"""Cross-process shard service: multiprocessing workers + shared memory.

A :class:`ProcessShardedStore` is the process-boundary sibling of
:class:`repro.store.sharded.ShardedStore`: each shard of the logical
``(num_rows, dim)`` table lives in a **worker process** that owns its
rows, and every store operation is a batched RPC answered over
**shared-memory row buffers** — no GIL coupling on the row copies, and
no pickling of row data, ever:

* the parent writes one planned call's row ids into a shared id arena
  and rings each touched worker's doorbell (a
  :func:`multiprocessing.Pipe` message carrying three integers);
* each worker gathers its rows with one clipped ``take`` **directly
  into its slice of the shared result arena** — row bytes cross the
  process boundary exactly once, in the worker's copy;
* under ``no_grad`` the returned tensor *is* a view of that arena, so
  the fused executor (:mod:`repro.executor`) consumes gathered rows
  with zero re-copies (the copy-audit test pins this down).

Result-arena recycling contract
-------------------------------
Like :class:`repro.executor.FusedWorkspace` buffers, ``no_grad`` gather
results live in a recycled arena: a result stays valid for at least the
next 7 store operations (the allocator refuses to overwrite any of the
last 8 allocations in place — it grows a fresh segment instead and
*retires* the old one, keeping already-returned views alive until
:meth:`ProcessShardedStore.close`).  Callers that retain rows across
many gathers must copy them — every in-repo consumer (the fused planned
flush, the chunked eval protocol, the LRU row cache) finishes with or
copies the rows within one call.  Grad-enabled gathers always return a
private copy: autograd graphs outlive arbitrarily many forwards.

Bit-identity contract
---------------------
Forward rows are exact copies of the logical table, so scores match the
dense layout bit-for-bit.  The backward mirrors the in-process sharded
adjoint exactly: the parent splits the incoming gradient by owning
shard (a pure permutation), ships each slice through the result arena,
and the **worker** applies the same
:func:`repro.nn.tensor._scatter_rows_add` + zeros-init accumulation an
in-process shard parameter would — followed, at ``optimizer.step()``,
by the same per-shard dense (or lazy-row) Adam/SGD arithmetic on
worker-owned moment buffers.  Training with a ``ProcessShardedStore``
is therefore bit-for-bit the dense run (asserted in
``tests/test_store_service.py``), because every per-row update depends
only on that row's gradient and state.

Memory model
------------
A worker permanently holds its owned block (≤ ``ceil(num_rows /
n_shards)`` rows) and transiently touches at most one RPC's rows (≤ the
gather chunk / ``io_chunk``), so per-process peak resident rows stay
≤ ``ceil(num_rows / n_shards) + chunk`` during gather, training and
reshard.  The logical table is materialised only by the explicitly
logical APIs (:meth:`ProcessShardedStore.logical_state` / ``all()``);
checkpoint streaming (``save_checkpoint(shard_files=True)`` +
:meth:`assign_rows`) moves rows shard-by-shard in ``io_chunk`` slices,
which is the supported transport for shard placement and N→M reshard
(docs/sharding.md has the recipe).

Fault path
----------
A dead worker or an RPC timeout raises
:class:`repro.serving.errors.ShardUnavailable` (shard id + elapsed
diagnostics).  The serving engine's per-task fault isolation converts a
scoring exception into failed tickets for that task only, so one lost
shard degrades the co-batched task, not the engine.

Lifecycle
---------
Workers start on construction (a readiness handshake guarantees the
store is serviceable when ``__init__`` returns) and stop via
:meth:`close` — also wired to a :func:`weakref.finalize` guard, so
garbage collection and interpreter exit reap the processes and unlink
every shared-memory segment even when a caller forgets to close.  The
store is a context manager.
"""

from __future__ import annotations

import multiprocessing
import time
import weakref
from collections import deque
from multiprocessing import shared_memory
from multiprocessing.connection import wait as _wait_connections
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, _scatter_rows_add, is_grad_enabled
from repro.store.base import EmbeddingStore, Partitioner, ShardMap
from repro.store.quant import (
    check_quant_mode,
    dequantize_rows,
    quant_bytes_per_row,
    quantize_rows,
)

__all__ = ["ProcessShardedStore", "RemoteShardParameter"]


# Per-worker slots of the shared stats block (single writer per row —
# the owning worker; the parent reads them without any RPC).
_ST_GATHERS = 0
_ST_ROWS_SERVED = 1
_ST_MAX_RPC_ROWS = 2
_ST_ASSIGNS = 3
_ST_ACCUMS = 4
_ST_STEPS = 5
_ST_READS = 6
_ST_ERRORS = 7
_ST_SLOTS = 8

_MIN_ARENA_ROWS = 1024
#: How many trailing arena allocations stay overwrite-protected — the
#: result-liveness depth of the recycling contract above.
_LIVE_RESULTS = 8


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without adopting cleanup responsibility.

    Python 3.11's ``SharedMemory`` registers the segment with the
    process's resource tracker even on attach, so an exiting worker
    would unlink arenas the parent still owns; unregister immediately
    (the creating parent unlinks everything in ``close()``).
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        # Suppress attach-time registration instead of unregistering
        # afterwards: forked workers share the parent's tracker, so an
        # unregister here would drop the *parent's* registration (and a
        # second worker's unregister would be a tracker error).
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except AttributeError:
        return shared_memory.SharedMemory(name=name)


def _unlink_shm(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink a parent-owned segment without tracker noise.

    Forked workers share the parent's resource tracker, so their
    attach-time ``unregister`` (see :func:`_attach_shm`) also dropped
    the *parent's* registration; re-register right before unlinking so
    the tracker's bookkeeping balances either way (registration is a
    set — re-adding a still-tracked name is a no-op).
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass


class _WorkerState:
    """Everything one shard worker owns (lives only in the worker).

    Unquantised workers hold float ``rows``; quantised workers
    (``quantize="int8"|"fp16"``) hold only the compact payload —
    ``q`` codes plus int8's per-row ``scale``/``zero`` side arrays —
    and ``rows`` stays ``None``, which is what shrinks per-worker
    resident bytes by the tier's factor.  Quantised workers serve
    inference only: the training ops raise instead of touching rows.
    """

    __slots__ = ("rows", "q", "scale", "zero", "grad", "m", "v", "vel", "touched", "base")

    def __init__(self, rows: Optional[np.ndarray], base: int) -> None:
        self.rows = rows
        self.q: Optional[np.ndarray] = None
        self.scale: Optional[np.ndarray] = None
        self.zero: Optional[np.ndarray] = None
        self.grad: Optional[np.ndarray] = None
        self.m: Optional[np.ndarray] = None
        self.v: Optional[np.ndarray] = None
        self.vel: Optional[np.ndarray] = None
        self.touched = None  # None | True | sorted unique local id array
        self.base = base


_QUANT_TRAIN_ERROR = (
    "quantised shards serve inference only — train the full-precision "
    "layout and restore the checkpoint into a quantize= store "
    "(see docs/quantization.md)"
)


def _require_trainable(state: _WorkerState) -> np.ndarray:
    if state.rows is None:
        raise RuntimeError(_QUANT_TRAIN_ERROR)
    return state.rows


def _worker_accumulate(state: _WorkerState, grad: np.ndarray) -> None:
    """Mirror ``Tensor._accumulate``: zeros-init then in-place add."""
    if state.grad is None:
        state.grad = np.zeros_like(_require_trainable(state))
    state.grad += grad


def _record_worker_touch(state: _WorkerState, local: np.ndarray) -> None:
    """Mirror ``EmbeddingStore._record_touch`` for the lazy-Adam rows."""
    if state.touched is True:
        return
    rows = np.unique(local)
    state.touched = rows if state.touched is None else np.union1d(state.touched, rows)


def _worker_adam(state: _WorkerState, lr, b1, b2, eps, wd, t, lazy) -> bool:
    """One Adam update on the owned rows — :class:`repro.nn.optim.Adam`
    arithmetic verbatim, so the result is bit-identical to the update
    the in-process shard parameter would receive."""
    grad = state.grad
    if grad is None:
        return False
    rows = state.rows
    if state.m is None:
        state.m = np.zeros_like(rows)
        state.v = np.zeros_like(rows)
    bc1 = 1.0 - b1**t
    bc2 = 1.0 - b2**t
    touched = state.touched
    m, v = state.m, state.v
    if lazy and touched is not None and touched is not True:
        r = np.asarray(touched, dtype=np.int64)
        g = grad[r]
        if wd:
            g = g + wd * rows[r]
        m_rows = b1 * m[r] + (1.0 - b1) * g
        v_rows = b2 * v[r] + (1.0 - b2) * g**2
        m[r] = m_rows
        v[r] = v_rows
        rows[r] -= lr * (m_rows / bc1) / (np.sqrt(v_rows / bc2) + eps)
    else:
        g = grad
        if wd:
            g = g + wd * rows
        m *= b1
        m += (1.0 - b1) * g
        v *= b2
        v += (1.0 - b2) * g**2
        rows -= lr * (m / bc1) / (np.sqrt(v / bc2) + eps)
    state.touched = None
    return True


def _worker_sgd(state: _WorkerState, lr, momentum, wd) -> bool:
    """One SGD update — :class:`repro.nn.optim.SGD` arithmetic verbatim."""
    grad = state.grad
    if grad is None:
        return False
    rows = state.rows
    g = grad
    if wd:
        g = g + wd * rows
    if momentum:
        if state.vel is None:
            state.vel = np.zeros_like(rows)
        vel = state.vel
        vel *= momentum
        vel += g
        rows -= lr * vel
    else:
        rows -= lr * g
    state.touched = None
    return True


def _shard_worker(shard: int, conn, parent_conn, spec: dict) -> None:
    """Entry point of one shard worker process.

    Owns ``spec["size"]`` rows, answers doorbell RPCs over ``conn`` and
    moves row payloads through the shared arenas named in ``spec``.
    Exits on ``("stop",)`` or on EOF — the inherited parent pipe end is
    closed below, so a vanished parent surfaces as EOF, not a hang.
    """
    if parent_conn is not None:
        parent_conn.close()
    size, dim = spec["size"], spec["dim"]
    dtype = np.dtype(spec["dtype"])
    quantize = spec.get("quantize")
    if quantize:
        # Quantised workers never allocate float rows: codes (+ int8's
        # side arrays) are the whole resident payload.  Zero-init codes
        # with the degenerate convention (scale=1, zero=0) dequantise to
        # exact zeros — matching the unquantised zero-init contract.
        state = _WorkerState(None, spec["base"])
        if quantize == "int8":
            state.q = np.zeros((size, dim), dtype=np.int8)
            state.scale = np.ones(size, dtype=np.float32)
            state.zero = np.zeros(size, dtype=np.float32)
        else:
            state.q = np.zeros((size, dim), dtype=np.float16)
    else:
        state = _WorkerState(np.zeros((size, dim), dtype=dtype), spec["base"])

    def dequant_into(local: np.ndarray, out: np.ndarray) -> None:
        """Worker-side dequantise-on-gather into the shared result arena."""
        q = state.q.take(local, axis=0, mode="clip")
        scale = None if state.scale is None else state.scale.take(local, mode="clip")
        zero = None if state.zero is None else state.zero.take(local, mode="clip")
        dequantize_rows(q, scale, zero, out=out)

    stats_shm = _attach_shm(spec["stats_name"])
    stats = np.ndarray(
        (spec["n_shards"], _ST_SLOTS), dtype=np.int64, buffer=stats_shm.buf
    )[shard]

    ids_shm = _attach_shm(spec["ids_name"])
    res_shm = _attach_shm(spec["res_name"])
    cap = spec["res_cap"]
    ids_np = np.ndarray((cap,), dtype=np.int64, buffer=ids_shm.buf)
    res_np = np.ndarray((cap, dim), dtype=dtype, buffer=res_shm.buf)

    def note_rpc(slot: int, n: int) -> None:
        stats[slot] += 1
        if n > stats[_ST_MAX_RPC_ROWS]:
            stats[_ST_MAX_RPC_ROWS] = n

    conn.send(("ready",))
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg[0]
            try:
                if op == "gatherg" or op == "gather":
                    _, i0, i1, r0 = msg
                    n = i1 - i0
                    local = ids_np[i0:i1]
                    if op == "gatherg":
                        local = local - state.base
                    if quantize:
                        dequant_into(local, res_np[r0 : r0 + n])
                    else:
                        state.rows.take(
                            local, axis=0, out=res_np[r0 : r0 + n], mode="clip"
                        )
                    note_rpc(_ST_GATHERS, n)
                    stats[_ST_ROWS_SERVED] += n
                    conn.send(("ok",))
                elif op == "read":
                    _, i0, i1, r0 = msg
                    n = i1 - i0
                    if quantize:
                        dequant_into(ids_np[i0:i1], res_np[r0 : r0 + n])
                    else:
                        state.rows.take(
                            ids_np[i0:i1], axis=0, out=res_np[r0 : r0 + n], mode="clip"
                        )
                    note_rpc(_ST_READS, n)
                    conn.send(("ok",))
                elif op == "assign":
                    _, i0, i1, r0 = msg
                    n = i1 - i0
                    local = ids_np[i0:i1]
                    if quantize:
                        # Re-quantise the written rows (per-row scale
                        # refresh) — the live-swap / reshard write path.
                        q, scale, zero = quantize_rows(res_np[r0 : r0 + n], quantize)
                        state.q[local] = q
                        if scale is not None:
                            state.scale[local] = scale
                            state.zero[local] = zero
                    else:
                        state.rows[local] = res_np[r0 : r0 + n]
                    note_rpc(_ST_ASSIGNS, n)
                    conn.send(("ok",))
                elif op == "accum":
                    _, i0, i1, r0 = msg
                    n = i1 - i0
                    local = np.array(ids_np[i0:i1])
                    _worker_accumulate(
                        state,
                        _scatter_rows_add(
                            local, res_np[r0 : r0 + n], size,
                            _require_trainable(state).dtype,
                        ),
                    )
                    if n:
                        _record_worker_touch(state, local)
                    note_rpc(_ST_ACCUMS, n)
                    conn.send(("ok",))
                elif op == "accum_all":
                    _, r0 = msg
                    _worker_accumulate(state, res_np[r0 : r0 + size])
                    state.touched = True
                    note_rpc(_ST_ACCUMS, size)
                    conn.send(("ok",))
                elif op == "zero_grad":
                    state.grad = None
                    state.touched = None
                    conn.send(("ok",))
                elif op == "sqsum":
                    value = (
                        None if state.grad is None else float((state.grad**2).sum())
                    )
                    conn.send(("ok", value))
                elif op == "scale":
                    if state.grad is not None:
                        state.grad *= msg[1]
                    conn.send(("ok",))
                elif op == "adam":
                    _, lr, b1, b2, eps, wd, t, lazy = msg
                    applied = _worker_adam(state, lr, b1, b2, eps, wd, t, lazy)
                    if applied:
                        stats[_ST_STEPS] += 1
                    conn.send(("ok", applied))
                elif op == "sgd":
                    _, lr, momentum, wd = msg
                    applied = _worker_sgd(state, lr, momentum, wd)
                    if applied:
                        stats[_ST_STEPS] += 1
                    conn.send(("ok", applied))
                elif op == "rebind":
                    dtype = np.dtype(msg[1])
                    if not quantize:
                        # Quantised payloads are dtype-independent: the
                        # rebind only switches the arena precision the
                        # worker dequantises into (handled by "remap").
                        state.rows = np.array(state.rows, dtype=dtype)
                    state.grad = None
                    conn.send(("ok",))
                elif op == "remap":
                    _, ids_name, res_name, cap, dtype_str = msg
                    dtype = np.dtype(dtype_str)
                    ids_shm.close()
                    res_shm.close()
                    ids_shm = _attach_shm(ids_name)
                    res_shm = _attach_shm(res_name)
                    ids_np = np.ndarray((cap,), dtype=np.int64, buffer=ids_shm.buf)
                    res_np = np.ndarray((cap, dim), dtype=dtype, buffer=res_shm.buf)
                    conn.send(("ok",))
                elif op == "stop":
                    break
                else:  # pragma: no cover - protocol defect
                    conn.send(("err", f"unknown op {op!r}"))
            except Exception as exc:  # keep serving after a bad request
                stats[_ST_ERRORS] += 1
                try:
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
                except (OSError, BrokenPipeError):
                    break
    finally:
        for shm in (ids_shm, res_shm, stats_shm):
            try:
                shm.close()
            except Exception:
                pass
        try:
            conn.close()
        except Exception:
            pass


class _Guard:
    """Raw worker/segment resources the finalizer owns.

    Deliberately holds no reference back to the store, so the
    :func:`weakref.finalize` callback can run from garbage collection
    or interpreter exit without resurrecting it.
    """

    __slots__ = ("procs", "conns", "segments")

    def __init__(self) -> None:
        self.procs: list = []
        self.conns: list = []
        self.segments: list = []

    @staticmethod
    def release(guard: "_Guard") -> None:
        for proc, conn in zip(guard.procs, guard.conns):
            if proc.is_alive():
                try:
                    conn.send(("stop",))
                except Exception:
                    pass
        for proc in guard.procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=1.0)
        for conn in guard.conns:
            try:
                conn.close()
            except Exception:
                pass
        for shm in guard.segments:
            _unlink_shm(shm)


class RemoteShardParameter(Parameter):
    """Parent-side handle for rows owned by a shard worker.

    Registers on the owning :class:`repro.nn.layers.Embedding` like an
    in-process shard parameter, but holds **no rows** — ``data`` is an
    empty ``(0, dim)`` placeholder.  Gradient and optimizer state live
    in the worker; the ``remote_*`` hooks let
    :func:`repro.nn.optim.clip_grad_norm` and the optimizers drive it
    with the exact per-shard arithmetic they apply in process (the
    hooks are duck-typed, so :mod:`repro.nn.optim` never imports the
    store layer).
    """

    def __init__(self, store: "ProcessShardedStore", shard: int, dim: int) -> None:
        super().__init__(np.empty((0, dim)), f"shard{shard}")
        self._store = store
        self._shard = shard

    def zero_grad(self) -> None:
        """Clear the worker-held gradient (and the touched-row record)."""
        super().zero_grad()
        self._store._zero_shard_grad(self._shard)

    # -- duck-typed optimizer hooks ------------------------------------
    def remote_grad_sqsum(self) -> Optional[float]:
        """``float((grad ** 2).sum())`` of the worker-held gradient."""
        return self._store._shard_grad_sqsum(self._shard)

    def remote_scale_grad(self, scale: float) -> None:
        """In-place ``grad *= scale`` inside the worker (clip adjoint)."""
        self._store._scale_shard_grad(self._shard, scale)

    def remote_adam_step(self, *, lr, beta1, beta2, eps, weight_decay, t, lazy) -> bool:
        """Apply one Adam update in the worker; True when a grad existed."""
        return self._store._shard_adam_step(
            self._shard, lr, beta1, beta2, eps, weight_decay, t, lazy
        )

    def remote_sgd_step(self, *, lr, momentum, weight_decay) -> bool:
        """Apply one SGD update in the worker; True when a grad existed."""
        return self._store._shard_sgd_step(self._shard, lr, momentum, weight_decay)


class ProcessShardedStore(EmbeddingStore):
    """N-way partitioned embedding table served by worker processes.

    Parameters
    ----------
    values: initial logical table, streamed to the workers in
        ``io_chunk`` row slices (so initialisation is bit-identical to
        every other layout built from the same array).  Pass ``None``
        with explicit ``num_rows``/``dim`` — or use :meth:`empty` — and
        place rows via :meth:`assign_rows`/checkpoint streaming to
        avoid ever materialising the table in one process.
    n_shards: worker process count (>= 1).
    partition: ``"range"`` or ``"hash"`` (see
        :class:`repro.store.base.Partitioner`).
    io_chunk: row slice size of the streaming APIs (construction,
        ``logical_state``, ``shard_rows``, ``assign_rows`` re-chunking)
        — the transient per-process resident bound on those paths.
    rpc_timeout: seconds to wait on a worker before raising
        :class:`repro.serving.errors.ShardUnavailable`.
    start_method: multiprocessing start method (default ``fork`` when
        the platform offers it, else the platform default).
    quantize: ``None`` (float rows — the historical layout) or
        ``"int8"``/``"fp16"``: each worker holds only the *quantised*
        payload of its rows (codes + int8's per-row scale/zero side
        arrays) and dequantises into its disjoint result-arena slice on
        gather, shrinking per-worker resident bytes by ~4×/~2×.
        Quantised stores serve **inference only**: grad-enabled gathers
        raise (train the full-precision layout, then restore the
        canonical float checkpoint into a quantised store).  Writes
        (``assign_rows``, reshard streaming, ``refresh()`` live swaps)
        re-quantise inside the owning worker with a per-row scale
        refresh.
    """

    def __init__(
        self,
        values: Optional[np.ndarray] = None,
        n_shards: int = 2,
        partition: str = "range",
        *,
        num_rows: Optional[int] = None,
        dim: Optional[int] = None,
        dtype=np.float64,
        io_chunk: int = 16384,
        rpc_timeout: float = 30.0,
        start_method: Optional[str] = None,
        quantize: Optional[str] = None,
    ) -> None:
        super().__init__()
        if values is not None:
            values = np.asarray(values)
            if values.ndim != 2:
                raise ValueError(f"need a (rows, dim) table, got shape {values.shape}")
            num_rows, dim = values.shape
        if num_rows is None or dim is None:
            raise ValueError("need either values or explicit num_rows and dim")
        if io_chunk < 1:
            raise ValueError(f"io_chunk must be >= 1, got {io_chunk}")
        self.num_rows, self.dim = int(num_rows), int(dim)
        self.partitioner = Partitioner(self.num_rows, n_shards, partition)
        self.quantize = check_quant_mode(quantize)
        self._dtype = np.dtype(dtype)
        self.io_chunk = int(io_chunk)
        self.rpc_timeout = float(rpc_timeout)
        self._failed: Dict[int, str] = {}
        self._starts = np.asarray(self.partitioner._starts, dtype=np.int64)
        self._guard = _Guard()
        self._finalizer = weakref.finalize(self, _Guard.release, self._guard)

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = multiprocessing.get_context(start_method)

        # Shared stats block: one int64 row per worker, written by the
        # worker after each RPC, read by stats_snapshot() without IPC.
        self._stats_shm = shared_memory.SharedMemory(
            create=True, size=max(n_shards, 1) * _ST_SLOTS * 8
        )
        self._guard.segments.append(self._stats_shm)
        self._stats_np = np.ndarray(
            (n_shards, _ST_SLOTS), dtype=np.int64, buffer=self._stats_shm.buf
        )
        self._stats_np[...] = 0

        # Row arenas: id arena + result arena with one shared row
        # capacity and bump cursor, grown geometrically via "remap".
        self._cap = 0
        self._cursor = 0
        self._recent: deque = deque(maxlen=_LIVE_RESULTS)
        self._ids_shm: Optional[shared_memory.SharedMemory] = None
        self._res_shm: Optional[shared_memory.SharedMemory] = None
        self._ids_np: Optional[np.ndarray] = None
        self._res_np: Optional[np.ndarray] = None
        self._grow_arena(min(self.io_chunk, max(self.num_rows, 1)), notify=False)

        self._conns: list = []
        self._procs: list = []
        for k in range(n_shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            spec = {
                "size": self.partitioner.shard_size(k),
                "dim": self.dim,
                "dtype": self._dtype.str,
                "base": int(self._starts[k]) if partition == "range" else 0,
                "n_shards": n_shards,
                "stats_name": self._stats_shm.name,
                "ids_name": self._ids_shm.name,
                "res_name": self._res_shm.name,
                "res_cap": self._cap,
                "quantize": self.quantize,
            }
            proc = ctx.Process(
                target=_shard_worker,
                args=(
                    k,
                    child_conn,
                    parent_conn if start_method == "fork" else None,
                    spec,
                ),
                name=f"repro-shard-{k}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._guard.procs.extend(self._procs)
        self._guard.conns.extend(self._conns)

        # Readiness handshake: the store is serviceable on return.
        for k in range(n_shards):
            reply = self._recv(k, time.monotonic())
            if reply != ("ready",):  # pragma: no cover - defensive
                raise RuntimeError(f"shard {k} worker failed to start: {reply!r}")

        self._params = [
            RemoteShardParameter(self, k, self.dim) for k in range(n_shards)
        ]
        if partition == "hash":
            # all(): rows concatenated shard-by-shard are a permutation
            # of the logical order; precompute the unpermute index once.
            offsets = np.concatenate(
                [[0], np.cumsum([self.partitioner.shard_size(k) for k in range(n_shards)])]
            )
            ids = np.arange(self.num_rows, dtype=np.int64)
            self._all_perm: Optional[np.ndarray] = (
                offsets[self.partitioner.owner(ids)] + self.partitioner.to_local(ids)
            )
        else:
            self._all_perm = None

        if values is not None:
            self._stream_table(values)

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        num_rows: int,
        dim: int,
        n_shards: int = 2,
        partition: str = "range",
        **kwargs,
    ) -> "ProcessShardedStore":
        """Zero-initialised store — the never-materialise-the-table path.

        Combine with :meth:`assign_rows` (or
        :func:`repro.training.checkpoint.restore_model` shard-file
        streaming) to place rows shard-by-shard.
        """
        return cls(None, n_shards, partition, num_rows=num_rows, dim=dim, **kwargs)

    def close(self) -> None:
        """Stop and join the workers, unlink every shared segment.

        Idempotent; the same cleanup runs from the garbage-collection /
        interpreter-exit guard, so a dropped store cannot leak processes
        or shm segments.
        """
        self._finalizer()

    def __enter__(self) -> "ProcessShardedStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` (or the GC guard) already ran."""
        return not self._finalizer.alive

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("ProcessShardedStore is closed")

    def _stream_table(self, values: np.ndarray) -> None:
        """Send each worker its rows, ``io_chunk`` at a time."""
        for k in range(self.n_shards):
            owned = self.partitioner.owned_ids(k)
            for start in range(0, len(owned), self.io_chunk):
                chunk = owned[start : start + self.io_chunk]
                self.assign_rows(chunk, values[chunk])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.partitioner.n_shards

    @property
    def partition(self) -> str:
        return self.partitioner.kind

    def shard_size_of(self, shard: int) -> int:
        return self.partitioner.shard_size(shard)

    def named_parameters(self) -> List[Tuple[str, Parameter]]:
        return [(f"shard{k}", p) for k, p in enumerate(self._params)]

    def worker_pids(self) -> List[Optional[int]]:
        """PIDs of the shard workers (lifecycle tests / diagnostics)."""
        return [proc.pid for proc in self._procs]

    def stats_snapshot(self) -> dict:
        """Parent counters plus per-worker counters from shared memory.

        The worker rows are written inside the worker processes (no RPC
        to read them) and aggregated here into the same
        JSON-serializable snapshot ``RequestBatcher.shard_stats()`` and
        ``ServingEngine.stats()`` surface for every other layout.
        """
        snap = super().stats_snapshot()
        rows = np.array(self._stats_np, copy=True)
        row_bytes = self._worker_bytes_per_row()
        workers = []
        for k in range(self.n_shards):
            row = rows[k]
            owned = self.partitioner.shard_size(k)
            workers.append(
                {
                    "pid": self._procs[k].pid,
                    "alive": bool(self._procs[k].is_alive()),
                    "gathers": int(row[_ST_GATHERS]),
                    "rows_served": int(row[_ST_ROWS_SERVED]),
                    "max_rpc_rows": int(row[_ST_MAX_RPC_ROWS]),
                    "assigns": int(row[_ST_ASSIGNS]),
                    "grad_accums": int(row[_ST_ACCUMS]),
                    "optimizer_steps": int(row[_ST_STEPS]),
                    "reads": int(row[_ST_READS]),
                    "errors": int(row[_ST_ERRORS]),
                    "resident_rows": int(owned),
                    "peak_resident_rows": int(owned + row[_ST_MAX_RPC_ROWS]),
                    "resident_bytes": int(owned * row_bytes),
                    "peak_resident_bytes": int(
                        (owned + row[_ST_MAX_RPC_ROWS]) * row_bytes
                    ),
                }
            )
        snap["layout"] = "process"
        snap["quant_mode"] = self.quantize
        snap["workers"] = workers
        snap["worker_rows_served"] = int(rows[:, _ST_ROWS_SERVED].sum())
        snap["arena_bytes"] = int(self._arena_nbytes())
        return snap

    def _worker_bytes_per_row(self) -> int:
        """Bytes one worker holds per owned row (payload, side arrays)."""
        return quant_bytes_per_row(self.dim, self.quantize, self._dtype.itemsize)

    def _arena_nbytes(self) -> int:
        """Bytes of the live shared id/result arenas (parent-owned)."""
        return self._cap * 8 + self._cap * self.dim * self._dtype.itemsize

    def resident_nbytes(self) -> int:
        """Worker row payloads plus the live shared arenas."""
        return (
            sum(
                self.partitioner.shard_size(k) * self._worker_bytes_per_row()
                for k in range(self.n_shards)
            )
            + self._arena_nbytes()
        )

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------
    @property
    def _io_lock(self):
        # The base-class stats lock doubles as the RPC transaction lock:
        # one mutex orders counters and arena traffic alike.
        return self._lock

    def _unavailable(self, shard: int, started: float, why: str) -> Exception:
        # Deferred import: repro.serving imports repro.store at package
        # load; by the time a shard can fail, both packages exist.
        from repro.serving.errors import ShardUnavailable

        elapsed_ms = (time.monotonic() - started) * 1000.0
        return ShardUnavailable(
            f"shard {shard} worker unavailable ({why})",
            shard=shard,
            elapsed_ms=elapsed_ms,
        )

    def _recv(self, shard: int, started: float):
        conn, proc = self._conns[shard], self._procs[shard]
        deadline = started + self.rpc_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._failed[shard] = "rpc timeout"
                raise self._unavailable(shard, started, "rpc timeout")
            try:
                if conn.poll(min(0.1, remaining)):
                    return conn.recv()
            except (EOFError, OSError):
                self._failed[shard] = "pipe closed"
                raise self._unavailable(shard, started, "pipe closed") from None
            if not proc.is_alive():
                try:  # drain a reply that raced the exit
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                self._failed[shard] = "worker died"
                raise self._unavailable(shard, started, "worker died")

    def _collect(self, pending: List[int], started: float):
        """Collect one ack per pending shard via a single ``wait`` loop.

        One :func:`multiprocessing.connection.wait` over every
        outstanding pipe replaces the historical per-shard
        ``poll(0.1)`` loop: acks are drained in arrival order, so one
        slow shard no longer delays noticing that a faster one has
        already answered (or died).  Each wait is capped at 100ms so
        dead workers whose pipes never become readable are still
        detected promptly.  Returns ``(replies, first_error)`` —
        healthy acks are always drained even when some shard fails,
        keeping every surviving pipe in sync.
        """
        deadline = started + self.rpc_timeout
        replies: Dict[int, tuple] = {}
        error: Optional[Exception] = None
        outstanding = {self._conns[k]: k for k in pending}
        while outstanding:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for k in outstanding.values():
                    self._failed[k] = "rpc timeout"
                    if error is None:
                        error = self._unavailable(k, started, "rpc timeout")
                break
            ready = _wait_connections(
                list(outstanding), timeout=min(0.1, remaining)
            )
            for conn in ready:
                k = outstanding.pop(conn)
                try:
                    replies[k] = conn.recv()
                except (EOFError, OSError):
                    self._failed[k] = "pipe closed"
                    if error is None:
                        error = self._unavailable(k, started, "pipe closed")
            if ready:
                continue
            for conn, k in list(outstanding.items()):
                if not self._procs[k].is_alive():
                    del outstanding[conn]
                    try:  # drain a reply that raced the exit
                        if conn.poll(0):
                            replies[k] = conn.recv()
                            continue
                    except (EOFError, OSError):
                        pass
                    self._failed[k] = "worker died"
                    if error is None:
                        error = self._unavailable(k, started, "worker died")
        return replies, error

    def _transact(self, msgs: Dict[int, tuple]) -> Dict[int, tuple]:
        """Ring every touched worker's doorbell, then collect every ack.

        All sends complete before the first ack is read, so workers run
        concurrently; acks are then drained in *arrival* order by one
        :func:`multiprocessing.connection.wait` over all outstanding
        pipes (see :meth:`_collect`) — each pipe carries exactly one
        in-flight reply, so arrival-order draining can never desync
        them.  Callers hold ``_io_lock`` for the whole transaction —
        the arena slices stay reserved until every worker has acked.
        On a dead/late worker the healthy acks are still drained
        (keeping every surviving pipe in sync) before the first
        failure raises.
        """
        started = time.monotonic()
        error: Optional[Exception] = None
        sent: List[int] = []
        for k in sorted(msgs):
            if k in self._failed:
                if error is None:
                    error = self._unavailable(k, started, self._failed[k])
                continue
            try:
                self._conns[k].send(msgs[k])
                sent.append(k)
            except (OSError, BrokenPipeError, ValueError):
                self._failed[k] = "pipe closed"
                if error is None:
                    error = self._unavailable(k, started, "pipe closed")
        replies, recv_error = self._collect(sent, started)
        if error is None:
            error = recv_error
        if error is not None:
            raise error
        for k, reply in replies.items():
            if reply[0] == "err":
                raise RuntimeError(f"shard {k} worker error: {reply[1]}")
        return replies

    def _broadcast(self, msg: tuple) -> Dict[int, tuple]:
        with self._io_lock:
            return self._transact({k: msg for k in range(self.n_shards)})

    def _single(self, shard: int, msg: tuple) -> tuple:
        with self._io_lock:
            return self._transact({shard: msg})[shard]

    # ------------------------------------------------------------------
    # Arena management
    # ------------------------------------------------------------------
    def _grow_arena(self, need_rows: int, notify: bool = True) -> None:
        """Create fresh id/result arenas with >= ``need_rows`` capacity.

        Growing never invalidates returned views: the old result
        segment is *retired* into the guard's segment list (still
        mapped) and only unlinked at :meth:`close`.  The old id arena
        has no external readers and is unlinked immediately.
        """
        cap = max(2 * int(need_rows), 2 * self._cap, _MIN_ARENA_ROWS)
        ids_shm = shared_memory.SharedMemory(create=True, size=cap * 8)
        res_shm = shared_memory.SharedMemory(
            create=True, size=cap * self.dim * self._dtype.itemsize
        )
        self._guard.segments.extend([ids_shm, res_shm])
        old_ids = self._ids_shm
        self._ids_shm, self._res_shm = ids_shm, res_shm
        self._ids_np = np.ndarray((cap,), dtype=np.int64, buffer=ids_shm.buf)
        self._res_np = np.ndarray((cap, self.dim), dtype=self._dtype, buffer=res_shm.buf)
        self._cap = cap
        self._cursor = 0
        self._recent.clear()
        if notify:
            self._transact(
                {
                    k: ("remap", ids_shm.name, res_shm.name, cap, self._dtype.str)
                    for k in range(self.n_shards)
                }
            )
        if old_ids is not None:
            self._guard.segments.remove(old_ids)
            _unlink_shm(old_ids)

    def _alloc(self, n: int) -> int:
        """Reserve ``n`` arena rows (overwrite-safe); returns the offset.

        Refuses to reuse rows belonging to any of the last
        ``_LIVE_RESULTS`` allocations — when the bump cursor would land
        on one, the arena grows into a fresh segment instead (retiring
        the old one keeps outstanding views valid).  This is what makes
        the zero-copy ``no_grad`` views safe for the fused executor's
        multi-role gathers.
        """
        if n > self._cap:
            self._grow_arena(n)
        start = self._cursor
        if start + n > self._cap:
            start = 0
        stop = start + n
        if n and any(lo < stop and hi > start for lo, hi in self._recent):
            self._grow_arena(n)
            start, stop = 0, n
        self._cursor = stop
        if n:
            self._recent.append((start, stop))
        return start

    # ------------------------------------------------------------------
    # Gather (the hot path)
    # ------------------------------------------------------------------
    def shard_map(self, ids, plan=None, role: Optional[str] = None) -> ShardMap:
        """Per-shard gather plan for ``ids`` (plan-cached when given)."""
        if plan is not None and role is not None:
            return plan.shard_map(role, self.partitioner)
        return self.partitioner.build_map(ids)

    def gather(self, ids, plan=None, role: Optional[str] = None) -> Tensor:
        self._check_open()
        idx = np.asarray(ids, dtype=np.int64)
        n = idx.size
        grad = is_grad_enabled()
        if grad and self.quantize:
            # Fail before any RPC: quantised workers hold no float rows
            # to train (the in-process QuantizedStore bypasses to its
            # float master here; this layout deliberately has none).
            raise RuntimeError(_QUANT_TRAIN_ERROR)

        smap: Optional[ShardMap] = None
        if plan is not None and role is not None:
            smap = plan.shard_map(role, self.partitioner)
            if smap.n_rows != n:
                # The plan's cached map answers for the plan's own role
                # array; a caller whose ids diverged from it would
                # silently receive rows for the wrong entities.
                raise ValueError(
                    f"gather ids ({n} rows) do not match the plan's "
                    f"{role!r} array ({smap.n_rows} rows) — pass plan=None to "
                    "gather an ad-hoc id set"
                )

        # Fast path: sorted ids under range partitioning (every planned
        # role array — plan entities come out of np.unique).  Shard
        # boundaries fall out of one searchsorted against the partition
        # starts; ids ship globally (workers subtract their own base),
        # so the parent does no argsort, no local-id translation and no
        # reassembly — the parent-side work reduction that lets the
        # cross-process store beat the in-process layout per gather
        # despite the IPC round-trip.
        fast = (
            smap is None
            and self.partition == "range"
            and (n < 2 or bool((idx[:-1] <= idx[1:]).all()))
        )
        if fast:
            if n and (idx[0] < 0 or idx[-1] >= self.num_rows):
                raise ValueError(
                    f"ids must lie in [0, {self.num_rows}), got range "
                    f"[{int(idx[0])}, {int(idx[-1])}]"
                )
            bounds = np.searchsorted(idx, self._starts)
            pieces = [
                (k, int(bounds[k]), int(bounds[k + 1]))
                for k in range(self.n_shards)
                if bounds[k + 1] > bounds[k]
            ]
            identity, inverse = True, None
        else:
            if smap is None:
                smap = self.partitioner.build_map(idx)
            offsets = np.concatenate(
                [[0], np.cumsum([len(local) for local in smap.per_shard_local])]
            )
            pieces = [
                (k, int(offsets[k]), int(offsets[k + 1]))
                for k in range(self.n_shards)
                if offsets[k + 1] > offsets[k]
            ]
            identity = smap.identity
            inverse = None if identity else smap.inverse

        with self._io_lock:
            offset = self._alloc(n)
            msgs: Dict[int, tuple] = {}
            for k, b0, b1 in pieces:
                if fast:
                    self._ids_np[offset + b0 : offset + b1] = idx[b0:b1]
                    msgs[k] = ("gatherg", offset + b0, offset + b1, offset + b0)
                else:
                    self._ids_np[offset + b0 : offset + b1] = smap.per_shard_local[k]
                    msgs[k] = ("gather", offset + b0, offset + b1, offset + b0)
            self._transact(msgs)
            view = self._res_np[offset : offset + n]
            if grad:
                values = np.array(view if identity else view[inverse])
            else:
                result = view if identity else view[inverse]

        max_rows = max((b1 - b0 for _, b0, b1 in pieces), default=0)
        self._record_gather(n, len(pieces), max_rows)
        if not grad:
            # Identity results are views of the shared result arena —
            # the zero-copy hand-off the fused executor consumes (see
            # the recycling contract in the module docstring).
            return Tensor(result)

        locals_by_shard: List[Tuple[int, int, int, np.ndarray]] = []
        for k, b0, b1 in pieces:
            if fast:
                local = idx[b0:b1] - int(self._starts[k])
            else:
                local = smap.per_shard_local[k]
            self._record_touch(self._params[k], local)
            locals_by_shard.append((k, b0, b1, local))

        # Training path: a private row copy (autograd graphs outlive the
        # recycled arena) and a backward that ships each shard's
        # gradient slice through the arena for the worker-side
        # scatter-add — the same split/scatter arithmetic as the
        # in-process adjoint.
        store = self
        dtype = self._dtype

        def backward(g: np.ndarray) -> None:
            if inverse is not None:
                # take_rows(grouped, inverse) adjoint: regroup the
                # incoming gradient into shard order (a permutation).
                g = _scatter_rows_add(inverse, g, n, dtype)
            if not locals_by_shard:
                store._accum_empty()
                return
            store._accum_shards(locals_by_shard, g)

        parents = tuple(self._params[k] for k, _, _, _ in locals_by_shard) or (
            self._params[0],
        )
        return Tensor._make(values, parents, backward)

    def _accum_shards(
        self, locals_by_shard: List[Tuple[int, int, int, np.ndarray]], g: np.ndarray
    ) -> None:
        """Ship per-shard gradient slices; workers scatter-accumulate."""
        self._check_open()
        g = np.ascontiguousarray(g, dtype=self._dtype)
        with self._io_lock:
            offset = self._alloc(len(g))
            msgs: Dict[int, tuple] = {}
            for k, b0, b1, local in locals_by_shard:
                self._ids_np[offset + b0 : offset + b1] = local
                self._res_np[offset + b0 : offset + b1] = g[b0:b1]
                msgs[k] = ("accum", offset + b0, offset + b1, offset + b0)
            self._transact(msgs)

    def _accum_empty(self) -> None:
        """Zero-row gradient parity: the in-process store's empty gather
        still materialises a zero gradient on shard 0."""
        self._check_open()
        with self._io_lock:
            offset = self._alloc(0)
            self._transact({0: ("accum", offset, offset, offset)})

    # ------------------------------------------------------------------
    # Logical-table APIs
    # ------------------------------------------------------------------
    def _read_local(self, shard: int, local: np.ndarray) -> np.ndarray:
        """Return a private copy of the worker's rows at shard-local ``local``."""
        with self._io_lock:
            offset = self._alloc(len(local))
            self._ids_np[offset : offset + len(local)] = local
            self._transact({shard: ("read", offset, offset + len(local), offset)})
            return np.array(self._res_np[offset : offset + len(local)])

    def logical_state(self) -> np.ndarray:
        """Materialise the logical table (in the parent) by streaming.

        Workers still touch only ``io_chunk`` rows per RPC; the parent
        holds the full table because that is what this API *is* — the
        shard-preserving alternative is :meth:`shard_rows` / checkpoint
        ``shard_files=True``.
        """
        self._check_open()
        out = np.empty((self.num_rows, self.dim), dtype=self._dtype)
        for k in range(self.n_shards):
            owned = self.partitioner.owned_ids(k)
            for start in range(0, len(owned), self.io_chunk):
                chunk = owned[start : start + self.io_chunk]
                local = self.partitioner.to_local(chunk)
                out[chunk] = self._read_local(k, local)
        return out

    def all(self) -> Tensor:
        """The logical table as one differentiable tensor (encoder path).

        The forward streams the table into a parent-side array; the
        backward hands each worker its contiguous full-shard gradient
        slice — the exact concat-split adjoint of the in-process layout
        (plus the unpermute scatter for hash partitioning).
        """
        self._check_open()
        if is_grad_enabled() and self.quantize:
            raise RuntimeError(_QUANT_TRAIN_ERROR)
        value = self.logical_state()
        for p in self._params:
            self._record_touch_all(p)
        store = self
        n = self.num_rows
        perm = self._all_perm
        dtype = self._dtype

        def backward(g: np.ndarray) -> None:
            if perm is not None:
                g = _scatter_rows_add(perm, g, n, dtype)
            store._accum_all(g)

        parents = tuple(
            p for k, p in enumerate(self._params) if self.partitioner.shard_size(k)
        ) or (self._params[0],)
        return Tensor._make(value, parents, backward)

    def _accum_all(self, g: np.ndarray) -> None:
        """Full-table gradient: one contiguous slice per non-empty shard."""
        self._check_open()
        g = np.ascontiguousarray(g, dtype=self._dtype)
        row0 = 0
        for k in range(self.n_shards):
            size = self.partitioner.shard_size(k)
            gslice = g[row0 : row0 + size]
            row0 += size
            if not size:
                continue
            if size <= self.io_chunk:
                with self._io_lock:
                    arena = self._alloc(size)
                    self._res_np[arena : arena + size] = gslice
                    self._transact({k: ("accum_all", arena)})
            else:
                # io_chunk-bounded variant: each slice is a scatter onto
                # its ascending local range, so the worker-side adds
                # place every row's gradient exactly once.
                for start in range(0, size, self.io_chunk):
                    stop = min(start + self.io_chunk, size)
                    local = np.arange(start, stop, dtype=np.int64)
                    with self._io_lock:
                        arena = self._alloc(stop - start)
                        self._ids_np[arena : arena + stop - start] = local
                        self._res_np[arena : arena + stop - start] = gslice[start:stop]
                        self._transact(
                            {k: ("accum", arena, arena + stop - start, arena)}
                        )

    def assign_rows(self, ids, values) -> None:
        """Scatter logical rows to their owning workers (streaming write).

        Only the owning workers are touched and requests re-chunk to
        ``io_chunk`` rows, so restoring from per-shard checkpoint files
        — including into a store with a *different* shard count (the
        N→M reshard recipe) — never materialises the full table and
        never exceeds the transient chunk bound in any process.
        """
        self._check_open()
        idx = np.asarray(ids, dtype=np.int64)
        values = np.asarray(values)
        if len(idx) > self.io_chunk:
            for start in range(0, len(idx), self.io_chunk):
                self.assign_rows(
                    idx[start : start + self.io_chunk],
                    values[start : start + self.io_chunk],
                )
            return
        smap = self.partitioner.build_map(idx)
        grouped = np.ascontiguousarray(values[smap.order], dtype=self._dtype)
        offsets = np.concatenate(
            [[0], np.cumsum([len(local) for local in smap.per_shard_local])]
        )
        with self._io_lock:
            offset = self._alloc(len(idx))
            msgs: Dict[int, tuple] = {}
            for k, local in enumerate(smap.per_shard_local):
                if not len(local):
                    continue
                b0, b1 = int(offsets[k]), int(offsets[k + 1])
                self._ids_np[offset + b0 : offset + b1] = local
                self._res_np[offset + b0 : offset + b1] = grouped[b0:b1]
                msgs[k] = ("assign", offset + b0, offset + b1, offset + b0)
            self._transact(msgs)
        for k in msgs:
            self._params[k].bump_version()

    def shard_rows(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(owned_ids, rows)`` of one shard, streamed ``io_chunk`` rows
        at a time — the per-shard checkpoint unit (parent-transient
        memory stays ≤ one shard + one chunk)."""
        self._check_open()
        owned = self.partitioner.owned_ids(shard)
        rows = np.empty((len(owned), self.dim), dtype=self._dtype)
        for start in range(0, len(owned), self.io_chunk):
            stop = min(start + self.io_chunk, len(owned))
            local = np.arange(start, stop, dtype=np.int64)
            rows[start:stop] = self._read_local(shard, local)
        return owned, rows

    def load_logical(self, values: np.ndarray, dtype=None) -> None:
        self._check_open()
        values = self._check_table(values)
        if dtype is not None:
            self.rebind_dtype(dtype)
        self._stream_table(values)

    def rebind_dtype(self, dtype) -> None:
        """Rebind worker row buffers (and the result arena) to ``dtype``."""
        self._check_open()
        resolved = np.dtype(dtype)
        self._broadcast(("rebind", resolved.str))
        with self._io_lock:
            self._dtype = resolved
            self._grow_arena(max(self._cap // 2, 1))
        for p in self._params:
            p.grad = None
            p.bump_version()

    # ------------------------------------------------------------------
    # Optimizer-side RPCs (driven by the RemoteShardParameter hooks)
    # ------------------------------------------------------------------
    def _zero_shard_grad(self, shard: int) -> None:
        if self.closed or shard in self._failed:
            return
        self._single(shard, ("zero_grad",))

    def _shard_grad_sqsum(self, shard: int) -> Optional[float]:
        self._check_open()
        return self._single(shard, ("sqsum",))[1]

    def _scale_shard_grad(self, shard: int, scale: float) -> None:
        self._check_open()
        self._single(shard, ("scale", float(scale)))

    def _shard_adam_step(
        self, shard, lr, beta1, beta2, eps, weight_decay, t, lazy
    ) -> bool:
        self._check_open()
        reply = self._single(
            shard,
            (
                "adam",
                float(lr),
                float(beta1),
                float(beta2),
                float(eps),
                float(weight_decay),
                int(t),
                bool(lazy),
            ),
        )
        return bool(reply[1])

    def _shard_sgd_step(self, shard, lr, momentum, weight_decay) -> bool:
        self._check_open()
        reply = self._single(
            shard, ("sgd", float(lr), float(momentum), float(weight_decay))
        )
        return bool(reply[1])
