"""Shard-gather benchmark: throughput and memory model of the shard layouts.

Measures the quantities the sharded embedding layer trades between
(docs/sharding.md):

* **Gather throughput** — rows/sec answering planned-style gathers
  (sorted unique id chunks, the exact shape
  :class:`repro.plan.ScoringPlan` produces) from a
  :class:`repro.store.DenseStore`, a :class:`repro.store.ShardedStore`
  at several shard counts, and the cross-process
  :class:`repro.store.ProcessShardedStore` at several worker counts —
  plus the differentiable round trip (gather → scatter-add backward)
  that dominates the planned training step.
* **Peak per-shard resident rows** — what one shard worker must hold:
  its owned block (≤ ``ceil(rows / n_shards)`` by construction) plus
  the largest transient RPC it ever answered (≤ the chunk size — the
  "chunk slack").  This is the number that says a catalog bigger than
  one machine's RAM fits once shards live in separate processes.
* **Quantised memory tier** — resident bytes/row of the int8 and fp16
  tiers (:mod:`repro.store.quant`) against the float32 baseline, across
  the dense, 2-shard, LRU-cached and process-sharded layouts.  Gates:
  int8 ≤ 0.30× float32 bytes/row (side arrays included — needs
  ``dim ≥ 40``, so the memory cells use their own ``MEM_DIM``), fp16 ≤
  0.55×.  Process cells also record peak resident bytes (owned payload
  + the largest RPC transient at the arena dtype).

Values gathered from shards are asserted bit-identical to the dense
table, and the resident-row bound is asserted per shard count.

Cross-process scaling is gated **parallelism-aware**: worker processes
fill their result slices concurrently, so on a host with spare cores
forward rows/sec must rise monotonically 1→2→4 workers; on a host
without them (``os.cpu_count()`` too small, e.g. a 1-CPU CI container)
the workers serialize and the gate instead bounds the serialization
overhead and still requires every cross-process cell to beat the
in-process :class:`ShardedStore` at the same shard count.  The report
records ``cpu_count`` and ``serialized`` so the cells read correctly
either way.

Writes ``BENCH_shard_gather.json`` at the repository root.  Run
directly (``PYTHONPATH=src python benchmarks/bench_shard_gather.py``);
``--smoke`` runs a seconds-scale configuration and skips the artifact.
Environment knobs: ``REPRO_BENCH_SHARD_ROWS / DIM / CHUNK / ROUNDS``.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from repro.nn.tensor import dtype_scope, no_grad
from repro.store import (
    DenseStore,
    LRUCachedStore,
    ProcessShardedStore,
    ShardedStore,
    make_store,
)

ROWS = int(os.environ.get("REPRO_BENCH_SHARD_ROWS", "200000"))
DIM = int(os.environ.get("REPRO_BENCH_SHARD_DIM", "64"))
CHUNK = int(os.environ.get("REPRO_BENCH_SHARD_CHUNK", "4096"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SHARD_ROUNDS", "3"))

# Memory-tier cells use their own table: the 0.30× int8 gate needs
# dim >= 40 ((dim + 8) / 4·dim), so MEM_DIM must not follow the smoke
# run's tiny DIM.
MEM_ROWS = int(os.environ.get("REPRO_BENCH_MEM_ROWS", "20000"))
MEM_DIM = int(os.environ.get("REPRO_BENCH_MEM_DIM", "64"))

#: bytes/row ceilings vs the float32 baseline, per quantised mode.
MEM_GATES = {"int8": 0.30, "fp16": 0.55}

SHARD_COUNTS = (2, 4, 8)
WORKER_COUNTS = (1, 2, 4)
SEED = 13

#: Serial-host floor: with every worker sharing one core the doorbell
#: round-trips serialize, but they must stay cheap — the slowest
#: cross-process cell may not fall below this fraction of the fastest.
SERIAL_FLOOR = 0.45

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard_gather.json"


def _make_chunks(rng: np.random.Generator) -> list:
    """Planned-style gather chunks: sorted unique ids, CHUNK rows each.

    Pre-generated so the timed loops measure the store, not
    ``np.sort`` — the planner hands every layout identical sorted id
    arrays at scoring time.
    """
    chunks = []
    for _ in range(ROUNDS):
        ids = rng.permutation(ROWS)
        for start in range(0, ROWS, CHUNK):
            chunks.append(np.sort(ids[start : start + CHUNK]))
    return chunks


def _time_gathers(store, chunks: list) -> dict:
    """Rows/sec for forward-only and forward+backward planned gathers."""
    with no_grad():  # warm-up (allocator, partition tables, page faults)
        store.gather(np.arange(min(CHUNK, ROWS), dtype=np.int64))
        for chunk in chunks[: max(len(chunks) // ROUNDS // 4, 1)]:
            store.gather(chunk)

    rows_done = 0
    started = time.perf_counter()
    with no_grad():
        for chunk in chunks:
            store.gather(chunk)
            rows_done += len(chunk)
    forward_seconds = time.perf_counter() - started

    grad_chunks = chunks[: len(chunks) // ROUNDS]
    grad_rows = 0
    started = time.perf_counter()
    for chunk in grad_chunks:
        out = store.gather(chunk)
        out.sum().backward()
        for _, param in store.named_parameters():
            param.zero_grad()
        grad_rows += len(chunk)
    train_seconds = time.perf_counter() - started

    return {
        "forward_rows_per_sec": round(rows_done / forward_seconds, 1),
        "train_rows_per_sec": round(grad_rows / train_seconds, 1),
    }


def _check_parity(store, dense_ref: np.ndarray) -> None:
    check = np.sort(np.random.default_rng(SEED + 1).permutation(ROWS)[:CHUNK])
    with no_grad():
        gathered = store.gather(check).data
    assert np.array_equal(gathered, dense_ref[check]), "sharded gather diverged"


def _bench_sharded(
    values: np.ndarray, dense_ref: np.ndarray, n_shards: int, chunks: list
) -> dict:
    store = ShardedStore(values, n_shards, "range")
    timing = _time_gathers(store, chunks)
    _check_parity(store, dense_ref)

    resident = store.resident_rows()
    ceil_bound = math.ceil(ROWS / n_shards)
    peak = max(resident) + store.stats["max_shard_gather_rows"]
    return {
        "n_shards": n_shards,
        **timing,
        "resident_rows_per_shard": resident,
        "ceil_rows_over_shards": ceil_bound,
        "max_shard_gather_rows": store.stats["max_shard_gather_rows"],
        "peak_resident_rows": peak,
        "peak_bound": ceil_bound + CHUNK,
        "shard_touches_per_gather": round(
            store.stats["shard_touches"] / max(store.stats["gathers"], 1), 3
        ),
    }


def _bench_process(
    values: np.ndarray, dense_ref: np.ndarray, n_workers: int, chunks: list
) -> dict:
    """One cross-process cell: ``n_workers`` shard worker processes.

    ``io_chunk=CHUNK`` keeps every streaming RPC within the same chunk
    bound the gathers obey, so the per-worker peak-resident gate is the
    identical ``ceil(rows/n) + chunk`` the in-process cells assert.
    """
    store = ProcessShardedStore(values, n_workers, "range", io_chunk=CHUNK)
    try:
        timing = _time_gathers(store, chunks)
        _check_parity(store, dense_ref)
        snap = store.stats_snapshot()
        workers = snap["workers"]
        ceil_bound = math.ceil(ROWS / n_workers)
        peak = max(w["peak_resident_rows"] for w in workers)
        return {
            "n_workers": n_workers,
            **timing,
            "resident_rows_per_worker": [w["resident_rows"] for w in workers],
            "ceil_rows_over_workers": ceil_bound,
            "max_rpc_rows": max(w["max_rpc_rows"] for w in workers),
            "peak_resident_rows": peak,
            "peak_bound": ceil_bound + CHUNK,
            "worker_rows_served": snap["worker_rows_served"],
        }
    finally:
        store.close()


def _mem_cell(layout: str, mode, values: np.ndarray, cpu_count: int) -> dict:
    """Resident bytes of one (layout, precision) combination.

    ``mode=None`` is the float32 baseline each quantised cell is gated
    against.  Every cell reports the bytes the *serving tier* holds per
    logical row — the quantised shadow, the cache payloads, or the
    worker-owned buffers — which is the factor by which the same RAM
    covers more rows.
    """
    rows = len(values)
    ids = np.arange(rows, dtype=np.int64)
    cell = {"layout": layout, "mode": mode or "float32", "rows": rows}
    if layout == "process2":
        store = ProcessShardedStore(values, 2, "range", dtype=np.float32,
                                    quantize=mode)
        try:
            with no_grad(), dtype_scope(np.float32):
                store.gather(ids[: min(CHUNK, rows)])
            snap = store.stats_snapshot()
            workers = snap["workers"]
            resident = sum(w["resident_bytes"] for w in workers)
            cell["resident_bytes"] = resident
            cell["peak_resident_bytes"] = max(
                w["peak_resident_bytes"] for w in workers
            )
            cell["arena_bytes"] = snap["arena_bytes"]
            # The scaling cells above explain when workers serialize;
            # memory cells are one gather, recorded for the same reading.
            cell["serialized"] = cpu_count < 3
        finally:
            store.close()
    else:
        if layout == "dense":
            store = make_store(values, quantize=mode)
        elif layout == "sharded2":
            store = make_store(values, n_shards=2, quantize=mode)
        elif layout == "lru":
            store = LRUCachedStore(make_store(values, quantize=mode),
                                   capacity=rows)
        else:  # pragma: no cover - config defect
            raise ValueError(f"unknown memory layout {layout!r}")
        if mode is None:
            store.rebind_dtype(np.float32)  # the float32 serving baseline
        with no_grad(), dtype_scope(np.float32):
            store.gather(ids)  # LRU cells measure a fully warm cache
        resident = store.resident_nbytes()
        cell["resident_bytes"] = int(resident)
        cell["peak_resident_bytes"] = int(resident)  # no RPC transients
    cell["bytes_per_row"] = round(cell["resident_bytes"] / rows, 2)
    return cell


def _bench_memory(cpu_count: int) -> dict:
    """float32 vs fp16 vs int8 resident bytes across the four layouts."""
    values = np.random.default_rng(SEED + 2).normal(size=(MEM_ROWS, MEM_DIM))
    layouts = ("dense", "sharded2", "lru", "process2")
    cells = [
        _mem_cell(layout, mode, values, cpu_count)
        for layout in layouts
        for mode in (None, "fp16", "int8")
    ]
    baseline = {
        c["layout"]: c["resident_bytes"] for c in cells if c["mode"] == "float32"
    }
    for cell in cells:
        cell["ratio_vs_float32"] = round(
            cell["resident_bytes"] / baseline[cell["layout"]], 3
        )
    return {
        "rows": MEM_ROWS,
        "dim": MEM_DIM,
        "cpu_count": cpu_count,
        "cells": cells,
    }


def run_benchmark() -> dict:
    rng = np.random.default_rng(SEED)
    values = rng.normal(size=(ROWS, DIM))
    chunks = _make_chunks(np.random.default_rng(SEED))
    dense = DenseStore(values)
    dense_timing = _time_gathers(dense, chunks)
    cpu_count = os.cpu_count() or 1
    report = {
        "config": {
            "rows": ROWS,
            "dim": DIM,
            "chunk": CHUNK,
            "rounds": ROUNDS,
            "cpu_count": cpu_count,
        },
        "dense": {
            **dense_timing,
            "resident_rows": ROWS,
        },
        "sharded": [
            _bench_sharded(values, dense.weight.data, n, chunks)
            for n in SHARD_COUNTS
        ],
        "process": [
            _bench_process(values, dense.weight.data, n, chunks)
            for n in WORKER_COUNTS
        ],
        "memory": _bench_memory(cpu_count),
    }
    for entry in report["sharded"]:
        entry["forward_vs_dense"] = round(
            entry["forward_rows_per_sec"] / report["dense"]["forward_rows_per_sec"], 3
        )
    inproc = {e["n_shards"]: e for e in report["sharded"]}
    for entry in report["process"]:
        entry["forward_vs_dense"] = round(
            entry["forward_rows_per_sec"] / report["dense"]["forward_rows_per_sec"], 3
        )
        peer = inproc.get(entry["n_workers"])
        entry["forward_vs_inprocess"] = (
            round(entry["forward_rows_per_sec"] / peer["forward_rows_per_sec"], 3)
            if peer
            else None
        )
        # Workers serialize when the host cannot run them beside the
        # parent; scaling cells then measure doorbell overhead, not
        # concurrency (gated accordingly in check_report).
        entry["serialized"] = cpu_count < entry["n_workers"] + 1
    return report


def check_report(report: dict, smoke: bool = False) -> None:
    """The acceptance gates the CI smoke run also exercises.

    ``smoke=True`` keeps the parity, memory-bound and serialization
    gates but skips the cross-vs-in-process throughput comparison: at
    the seconds-scale configuration the chunks are so small that
    doorbell round-trips dominate, which is not the regime the
    comparison speaks about (the full 200k-row config is).
    """
    for entry in report["sharded"]:
        n = entry["n_shards"]
        assert entry["peak_resident_rows"] <= entry["peak_bound"], (
            f"{n}-shard peak resident rows {entry['peak_resident_rows']} exceeds "
            f"ceil(rows/{n}) + chunk = {entry['peak_bound']}"
        )
        assert max(entry["resident_rows_per_shard"]) <= entry["ceil_rows_over_shards"]
        # Sharding buys memory, not speed — but the per-shard regrouping
        # must stay within a small constant factor of the dense gather.
        assert entry["forward_vs_dense"] > 0.1, (
            f"{n}-shard gather collapsed to {entry['forward_vs_dense']}x dense"
        )

    process = report.get("process", [])
    for entry in process:
        n = entry["n_workers"]
        assert entry["peak_resident_rows"] <= entry["peak_bound"], (
            f"{n}-worker peak resident rows {entry['peak_resident_rows']} exceeds "
            f"ceil(rows/{n}) + chunk = {entry['peak_bound']}"
        )
        assert (
            max(entry["resident_rows_per_worker"]) <= entry["ceil_rows_over_workers"]
        )
        # The cross-process fast path (no per-gather shard map, workers
        # write result slices directly) must beat the in-process layout
        # at the same shard count.
        if entry["forward_vs_inprocess"] is not None and not smoke:
            assert entry["forward_vs_inprocess"] > 1.0, (
                f"{n}-worker cross-process gather "
                f"({entry['forward_rows_per_sec']} rows/s) lost to the "
                f"in-process ShardedStore at {n} shards"
            )

    memory = report.get("memory", {})
    for cell in memory.get("cells", []):
        gate = MEM_GATES.get(cell["mode"])
        if gate is None:
            continue  # the float32 baseline rows
        assert cell["ratio_vs_float32"] <= gate, (
            f"{cell['mode']} {cell['layout']} tier holds "
            f"{cell['ratio_vs_float32']}x the float32 bytes/row "
            f"(gate {gate}x at dim={memory['dim']})"
        )
        assert cell["peak_resident_bytes"] >= cell["resident_bytes"]

    if process:
        rates = [e["forward_rows_per_sec"] for e in process]
        if not any(e["serialized"] for e in process):
            # Concurrent workers: more of them must raise throughput.
            assert all(a < b for a, b in zip(rates, rates[1:])), (
                f"forward rows/sec not rising with worker count: {rates}"
            )
        else:
            # Serialized workers (not enough cores): scaling cells only
            # add doorbell round-trips, so gate the overhead instead.
            assert min(rates) >= SERIAL_FLOOR * max(rates), (
                f"serialized cross-process overhead too high: {rates}"
            )


def test_shard_gather():
    """Per-shard resident rows bounded; gathers bit-identical to dense."""
    report = run_benchmark()
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    check_report(report)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run (small table, 1 round); skips the JSON artifact",
    )
    args = parser.parse_args()
    if args.smoke:
        ROWS, DIM, CHUNK, ROUNDS = 20000, 16, 1024, 1
        MEM_ROWS = 4000  # MEM_DIM stays 64: the 0.30x gate needs dim >= 40
    result = run_benchmark()
    check_report(result, smoke=args.smoke)
    if not args.smoke:
        OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
