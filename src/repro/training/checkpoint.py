"""Model checkpointing to ``.npz``.

Checkpoints hold the flat parameter state-dict plus a small JSON header
(model class name, step counter), enough to restore a model built with
the same constructor arguments — matching how the sweep benchmarks
retrain-and-restore best epochs.

Dtype policy
------------
Training state is float64 (the substrate pins :class:`repro.nn.module
.Parameter` to double precision), but serving wants float32 end-to-end:
``save_checkpoint(..., dtype="float32")`` exports a half-size archive,
and ``restore_model(..., dtype="float32")`` rebinds the model's
parameter buffers to float32 so a serving process (e.g. one feeding a
:class:`repro.serving.RequestBatcher`) never materialises double
precision weights at all.  The stored dtype is recorded in the metadata
header; loading with no explicit ``dtype`` keeps the model's own
parameter dtype (values are cast on assignment), so training round-trips
are unchanged.

Sharded tables
--------------
State dicts are *canonical*: an embedding table checkpoints as one
logical ``weight`` array no matter how its :mod:`repro.store` backend
partitions the rows, so a single-file checkpoint already restores
across any shard count (save dense → load 4-shard, save 4-shard → load
3-shard, …) with bit-identical values.

``save_checkpoint(..., shard_files=True)`` additionally splits every
*sharded* table out of the main archive into per-shard side files
(``<stem>.<entry>.shard<k>.npz`` holding that shard's ``ids`` + ``rows``
only), recorded in a ``shards`` manifest inside the metadata header.
No process then ever has to hold a full table: each shard worker saves
its own rows, and :func:`restore_model` streams each shard file into
whichever shards of the *target* layout own those rows
(:meth:`repro.store.EmbeddingStore.assign_rows`) — the shard-count
rebind never materialises the logical table either.
:func:`load_checkpoint` reassembles shard files into the logical table
by default so non-streaming consumers keep one uniform payload shape.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.nn.module import Module
from repro.store import EmbeddingStore, ProcessShardedStore, ShardedStore, iter_stores

__all__ = ["save_checkpoint", "load_checkpoint", "restore_model"]

PathLike = Union[str, Path]

_META_KEY = "__checkpoint_meta__"


def _coerce_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"checkpoint dtype must be float32|float64, got {dtype!r}")
    return resolved


def _base_store(store: EmbeddingStore) -> EmbeddingStore:
    """Unwrap decorator tiers (LRU cache, quantised shadow) to the layout.

    The *wrapper* stays the streaming target — its ``assign_rows`` is
    what re-quantises written rows / invalidates cached ones — but the
    layout decision (is this table sharded?) belongs to the base store.
    """
    while isinstance(getattr(store, "inner", None), EmbeddingStore):
        store = store.inner
    return store


def _sharded_entries(model: Module) -> Dict[str, EmbeddingStore]:
    """Canonical state-entry name → store, for every sharded table.

    Covers both shard layouts — in-process :class:`ShardedStore` and the
    cross-process :class:`ProcessShardedStore` — since both stream rows
    per shard without materialising the logical table.  Wrapper tiers
    (:class:`repro.store.LRUCachedStore`,
    :class:`repro.store.QuantizedStore`) are looked *through* for the
    layout check while the wrapped store keeps handling the streaming.
    """
    out: Dict[str, EmbeddingStore] = {}
    if hasattr(model, "named_modules"):
        for name, store in iter_stores(model):
            if isinstance(_base_store(store), (ShardedStore, ProcessShardedStore)):
                out[f"{name}.weight" if name != "<root>" else "weight"] = store
    return out


def _shard_file_name(path: Path, entry: str, shard: int) -> str:
    return f"{path.stem}.{entry}.shard{shard}.npz"


def save_checkpoint(
    model: Module,
    path: PathLike,
    extra: Optional[Dict] = None,
    dtype: Optional[str] = None,
    shard_files: bool = False,
) -> Path:
    """Write ``model``'s parameters (and optional metadata) to ``path``.

    ``dtype`` optionally casts every array on export (``"float32"``
    halves the archive and lets serving load reduced precision
    directly); ``None`` stores parameters as they are.  With
    ``shard_files=True`` each sharded table's rows go to per-shard side
    files instead of the main archive (see the module docstring); the
    flag is a no-op for fully dense models.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    resolved = None if dtype is None else _coerce_dtype(dtype)
    sharded = _sharded_entries(model) if shard_files else {}
    # exclude= keeps the sharded tables' logical arrays from ever being
    # materialised — their rows go straight from the shard buffers to
    # the side files below, preserving the per-shard memory model.
    payload = model.state_dict(exclude=sharded)
    if resolved is not None:
        payload = {k: np.asarray(v, dtype=resolved) for k, v in payload.items()}
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, dict] = {}
    for entry, store in sharded.items():
        files = []
        for shard in range(store.n_shards):
            ids, rows = store.shard_rows(shard)
            if resolved is not None:
                rows = np.asarray(rows, dtype=resolved)
            file_name = _shard_file_name(path, entry, shard)
            np.savez_compressed(path.parent / file_name, ids=ids, rows=rows)
            files.append(file_name)
        manifest[entry] = {
            "n_shards": store.n_shards,
            "partition": store.partition,
            "rows": store.num_rows,
            "dim": store.dim,
            "files": files,
        }
    if payload:
        stored = str(next(iter(payload.values())).dtype)
    elif resolved is not None:
        stored = str(resolved)
    elif sharded:
        # Every entry went to shard files (fully-sharded table-only
        # models): report the shards' actual buffer dtype.
        first = next(iter(sharded.values()))
        stored = str(first.shard_rows(0)[1].dtype)
    else:
        stored = "float64"
    meta = {"model_class": type(model).__name__, "dtype": stored, "extra": extra or {}}
    if manifest:
        meta["shards"] = manifest
    payload[_META_KEY] = np.bytes_(json.dumps(meta).encode())
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(path: PathLike, assemble_shards: bool = True) -> Dict:
    """Read a checkpoint into ``{"state": {...}, "meta": {...}}``.

    Arrays come back in their stored dtype; ``meta["dtype"]`` names it
    (older checkpoints without the field were float64).  When the
    checkpoint was written with per-shard files, ``assemble_shards=True``
    (default) reassembles each sharded entry into its logical table so
    every consumer sees one uniform state dict;
    ``assemble_shards=False`` leaves those entries out of ``state`` (the
    streaming path :func:`restore_model` takes).
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(bytes(archive[_META_KEY]).decode())
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    meta.setdefault("dtype", "float64")
    if assemble_shards:
        for entry, spec in meta.get("shards", {}).items():
            table = None
            for file_name in spec["files"]:
                with np.load(path.parent / file_name, allow_pickle=False) as part:
                    ids, rows = part["ids"], part["rows"]
                if table is None:
                    table = np.empty((spec["rows"], spec["dim"]), dtype=rows.dtype)
                table[ids] = rows
            state[entry] = table
    return {"state": state, "meta": meta}


def _store_for_entry(model: Module, entry: str):
    """Resolve a manifest entry (``<module path>.weight``) to its store."""
    stores = {
        (f"{name}.weight" if name != "<root>" else "weight"): store
        for name, store in iter_stores(model)
    }
    return stores.get(entry)


def restore_model(
    model: Module,
    path: PathLike,
    strict: bool = True,
    dtype: Optional[str] = None,
) -> Dict:
    """Load a checkpoint's parameters into ``model``; returns the metadata.

    ``dtype=None`` (default) assigns values into the model's existing
    parameter buffers — training keeps its float64 state regardless of
    how the archive was stored.  An explicit ``dtype`` *rebinds* the
    parameter buffers to that precision (the float32 serving path); such
    a model should only be used under ``no_grad``/serving scopes, not
    trained or gradchecked.

    Per-shard checkpoints stream: each shard file's rows are scattered
    straight into the target model's store
    (:meth:`repro.store.EmbeddingStore.assign_rows`), which re-partitions
    them under whatever shard count (or dense layout) the target uses —
    the logical table is never materialised, and restored scores are
    bit-identical across layouts.

    Raises ``ValueError`` when the checkpoint came from a different model
    class (unless ``strict=False``).
    """
    payload = load_checkpoint(path, assemble_shards=False)
    if strict and payload["meta"]["model_class"] != type(model).__name__:
        raise ValueError(
            f"checkpoint is for {payload['meta']['model_class']}, "
            f"refusing to load into {type(model).__name__}"
        )
    resolved = None if dtype is None else _coerce_dtype(dtype)
    manifest = payload["meta"].get("shards", {})
    if not manifest:
        model.load_state_dict(payload["state"], strict=strict, dtype=resolved)
    else:
        state = payload["state"]
        if strict:
            expected = set(model._state_names())
            provided = set(state) | set(manifest)
            missing = expected - provided
            unexpected = provided - expected
            if missing or unexpected:
                raise KeyError(
                    f"state mismatch: missing={sorted(missing)} "
                    f"unexpected={sorted(unexpected)}"
                )
        model.load_state_dict(state, strict=False, dtype=resolved)
        base = Path(path)
        if not base.exists() and base.with_suffix(".npz").exists():
            base = base.with_suffix(".npz")
        for entry, spec in manifest.items():
            store = _store_for_entry(model, entry)
            if store is None:
                if strict:
                    raise KeyError(
                        f"checkpoint shard entry {entry!r} has no store-backed "
                        "embedding in the target model"
                    )
                continue
            if (store.num_rows, store.dim) != (spec["rows"], spec["dim"]):
                raise ValueError(
                    f"shape mismatch for {entry}: ({store.num_rows}, {store.dim}) "
                    f"vs ({spec['rows']}, {spec['dim']})"
                )
            if resolved is not None:
                store.rebind_dtype(resolved)
            for file_name in spec["files"]:
                with np.load(base.parent / file_name, allow_pickle=False) as part:
                    store.assign_rows(part["ids"], part["rows"])
    if hasattr(model, "invalidate_cache"):
        model.invalidate_cache()
    return payload["meta"]
