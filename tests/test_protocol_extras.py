"""Additional negative-sampler and protocol edge-case tests."""

import numpy as np
import pytest

from repro.data import DealGroup, GroupBuyingDataset, NegativeSampler


@pytest.fixture()
def mini_dataset():
    return GroupBuyingDataset(
        n_users=8,
        n_items=5,
        train=[
            DealGroup(0, 0, (1, 2)),
            DealGroup(0, 1, (3,)),
            DealGroup(4, 2, (5,)),
        ],
        validation=[DealGroup(4, 3, (6,))],
        test=[DealGroup(1, 4, (7,))],
    )


class TestSamplerSplits:
    def test_train_only_exclusions(self, mini_dataset):
        sampler = NegativeSampler(mini_dataset, seed=0, splits=("train",))
        # User 4 bought items 2 (train) and 3 (validation): with
        # train-only exclusions item 3 may legitimately be sampled.
        draws = sampler.sample_items(4, 200)
        assert 2 not in draws
        assert 3 in draws

    def test_all_split_exclusions(self, mini_dataset):
        sampler = NegativeSampler(
            mini_dataset, seed=0, splits=("train", "validation", "test")
        )
        draws = sampler.sample_items(4, 200)
        assert 2 not in draws and 3 not in draws

    def test_participant_sampler_excludes_initiator(self, mini_dataset):
        sampler = NegativeSampler(mini_dataset, seed=0)
        draws = sampler.sample_participants(0, 0, 300)
        assert 0 not in draws
        assert 1 not in draws and 2 not in draws  # G_{0,0}

    def test_participant_extra_exclude(self, mini_dataset):
        sampler = NegativeSampler(mini_dataset, seed=0)
        draws = sampler.sample_participants(0, 0, 300, extra_exclude=(3, 4))
        assert not {3, 4} & set(draws.tolist())

    def test_unseen_pair_excludes_only_user(self, mini_dataset):
        sampler = NegativeSampler(mini_dataset, seed=0)
        draws = sampler.sample_participants(6, 0, 300)
        assert 6 not in draws


class TestCorruptionSets:
    def test_corrupt_items_excludes_only_true_item(self, mini_dataset):
        sampler = NegativeSampler(mini_dataset, seed=0)
        users = np.array([0, 0])
        items = np.array([0, 1])
        out = sampler.corrupt_items(users, items, 100)
        assert 0 not in out[0]
        assert 1 not in out[1]
        # The user's OTHER purchases are allowed in T_I (i' ∈ I \ i).
        assert 1 in out[0]

    def test_corrupt_participants_excludes_group(self, mini_dataset):
        sampler = NegativeSampler(mini_dataset, seed=0)
        out = sampler.corrupt_participants(np.array([0]), np.array([0]), 200)
        assert not {0, 1, 2} & set(out[0].tolist())

    def test_shapes(self, mini_dataset):
        sampler = NegativeSampler(mini_dataset, seed=0)
        users = np.array([0, 4, 0])
        items = np.array([0, 2, 1])
        assert sampler.corrupt_items(users, items, 7).shape == (3, 7)
        assert sampler.corrupt_participants(users, items, 7).shape == (3, 7)

    def test_batch_length_mismatch(self, mini_dataset):
        sampler = NegativeSampler(mini_dataset, seed=0)
        with pytest.raises(ValueError):
            sampler.sample_participants_batch(np.array([0, 1]), np.array([0]), 3)


class TestSamplerDeterminism:
    def test_same_seed_same_draws(self, mini_dataset):
        a = NegativeSampler(mini_dataset, seed=42).sample_items(0, 50)
        b = NegativeSampler(mini_dataset, seed=42).sample_items(0, 50)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_differs(self, mini_dataset):
        a = NegativeSampler(mini_dataset, seed=1).sample_items(0, 50)
        b = NegativeSampler(mini_dataset, seed=2).sample_items(0, 50)
        assert not np.array_equal(a, b)
