#!/usr/bin/env python3
"""Ablation study — a live, scaled-down version of the paper's Table IV.

Trains all five ablated variants plus full MGBR with identical budgets
and prints both tasks' metrics with the relative drop versus MGBR.
Expected shape (paper Sec. III-F): removing the shared experts (-M)
hurts most, the auxiliary losses (-R) and adjusted gates (-G) follow,
the single-HIN encoder (-D) sits in between, and -G's Task-B drop
exceeds its Task-A drop.

Run:  python examples/ablation_study.py  [--epochs 20]
"""

import argparse

from repro.core import MGBRConfig, VARIANTS, build_variant
from repro.data import SyntheticConfig, generate_dataset
from repro.eval import evaluate_model
from repro.training import TrainConfig, Trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=20)
    args = parser.parse_args()

    dataset = generate_dataset(
        SyntheticConfig(n_users=250, n_items=80, n_groups=1000), seed=7
    )
    base = MGBRConfig.small(
        d=16, learning_rate=5e-3, gcn_gain=10.0, aux_a_mode="listnet", seed=0
    )

    scores = {}
    for name in VARIANTS:
        config = base.replace(**VARIANTS[name])
        model = build_variant(name, dataset.train, dataset.n_users,
                              dataset.n_items, base=base)
        tc = TrainConfig.from_mgbr(
            config, epochs=args.epochs,
            eval_every=5, restore_best=True, eval_max_instances=100,
        )
        Trainer(model, dataset, tc).fit()
        result = evaluate_model(model, dataset, protocols=((9, 10),), max_instances=300)["@10"]
        scores[name] = result
        print(f"trained {name}")

    full = scores["MGBR"]
    print(f"\n{'Variant':10s} {'A MRR@10':>9s} {'drop':>8s} {'B MRR@10':>9s} {'drop':>8s}")
    for name, result in scores.items():
        def drop(task: str) -> str:
            ours = result.task_a if task == "A" else result.task_b
            ref = full.task_a if task == "A" else full.task_b
            if name == "MGBR":
                return "-"
            return f"{100 * (ours['MRR@10'] - ref['MRR@10']) / ref['MRR@10']:+.1f}%"

        print(f"{name:10s} {result.task_a['MRR@10']:9.4f} {drop('A'):>8s} "
              f"{result.task_b['MRR@10']:9.4f} {drop('B'):>8s}")


if __name__ == "__main__":
    main()
