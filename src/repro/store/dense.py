"""The single-table store: exactly the pre-sharding behaviour.

One :class:`repro.nn.module.Parameter` named ``weight`` holds the whole
logical table, ``gather`` is a plain row gather and ``all()`` returns
the parameter itself (full-graph encoders feed it to ``spmm`` without a
copy, and ``Embedding.all() is Embedding.weight`` stays true).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, take_rows
from repro.store.base import EmbeddingStore

__all__ = ["DenseStore"]


class DenseStore(EmbeddingStore):
    """All rows in one parameter — the default (and serving-cheapest
    layout while the table fits in one process)."""

    def __init__(self, values: np.ndarray) -> None:
        super().__init__()
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError(f"need a (rows, dim) table, got shape {values.shape}")
        self.num_rows, self.dim = values.shape
        self.weight = Parameter(values, "weight")

    @property
    def n_shards(self) -> int:
        return 1

    def shard_size_of(self, shard: int) -> int:
        if shard != 0:
            raise IndexError(f"dense store has one shard, got index {shard}")
        return self.num_rows

    def named_parameters(self) -> List[Tuple[str, Parameter]]:
        return [("weight", self.weight)]

    def resident_nbytes(self) -> int:
        return self.weight.data.nbytes

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def gather(self, ids, plan=None, role: Optional[str] = None) -> Tensor:
        del plan, role  # a single shard needs no gather map
        idx = np.asarray(ids, dtype=np.int64)
        self._record_gather(idx.size, 1 if idx.size else 0, idx.size)
        self._record_touch(self.weight, idx)
        return take_rows(self.weight, idx)

    def all(self) -> Tensor:
        self._record_touch_all(self.weight)
        return self.weight

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def logical_state(self) -> np.ndarray:
        return self.weight.data.copy()

    def load_logical(self, values: np.ndarray, dtype=None) -> None:
        self._assign_param(self.weight, self._check_table(values), dtype)

    def assign_rows(self, ids, values) -> None:
        idx = np.asarray(ids, dtype=np.int64)
        self.weight.data[idx] = values
        self.weight.bump_version()

    def shard_rows(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        if shard != 0:
            raise IndexError(f"dense store has one shard, got index {shard}")
        return np.arange(self.num_rows, dtype=np.int64), self.weight.data
