"""Array-backend registry, copy audit, and the CSR scatter cache.

The full op/adjoint conformance battery lives in ``test_nn_tensor.py``
(its autouse fixture re-runs every test under each registered backend);
this module covers what that sweep cannot: the registry contract, the
:class:`repro.nn.CountingBackend` copy accounting the audits rely on,
the zero-copy guarantees of the planned gather path, and the cached CSR
scatter operator behind :func:`repro.nn.tensor._scatter_rows_add`.
"""

import os

import numpy as np
import pytest

from repro.nn import (
    CountingBackend,
    available_backends,
    backend_scope,
    clear_scatter_cache,
    get_backend,
    register_backend,
    scatter_cache_stats,
    take_rows,
    tensor,
)
from repro.nn.tensor import _scatter_rows_add
from repro.store import ShardedStore


@pytest.fixture()
def counting():
    """A fresh instrumented backend activated for the test body."""
    backend = CountingBackend()
    with backend_scope(backend):
        yield backend


def _default_name():
    """The process-default backend name (``REPRO_BACKEND``-aware)."""
    name = os.environ.get("REPRO_BACKEND", "numpy")
    return name if name in available_backends() else "numpy"


class TestRegistry:
    def test_reference_backends_registered(self):
        names = available_backends()
        assert "numpy" in names and "counting" in names
        assert "parallel" in names  # registered on repro.nn import

    def test_get_backend_default_is_thread_active(self):
        assert get_backend().name == _default_name()
        with backend_scope("counting"):
            assert get_backend().name == "counting"
        assert get_backend().name == _default_name()

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            get_backend("no-such-backend")

    def test_register_is_idempotent(self):
        before = available_backends()
        register_backend(get_backend("numpy"))
        assert available_backends() == before

    def test_scope_accepts_instance(self):
        backend = CountingBackend()
        with backend_scope(backend):
            assert get_backend() is backend

    def test_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with backend_scope("counting"):
                raise RuntimeError("boom")
        assert get_backend().name == _default_name()


class TestCountingSemantics:
    def test_asarray_copy_accounting(self, counting):
        a = np.ones(4, dtype=np.float64)
        counting.asarray(a, np.float64)          # same dtype: no copy
        assert counting.copies == 0
        counting.asarray(a, np.float32)          # cast: one copy
        assert counting.copies == 1
        counting.asarray([1.0, 2.0], np.float64)  # list coercion isn't a copy
        assert counting.copies == 1

    def test_ensure_contiguous_copies_only_views(self, counting):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        counting.ensure_contiguous(a)
        assert counting.copies == 0
        counting.ensure_contiguous(a[:, ::2])    # strided view: one copy
        assert counting.copies == 1

    def test_reset_zeroes_counters(self, counting):
        counting.asarray(np.ones(2), np.float32)
        counting.matmul(np.ones((2, 2)), np.ones((2, 2)))
        counting.reset()
        assert counting.copies == 0 and counting.counts == {}


class TestPlannedGatherCopyAudit:
    """The planned float64 gather path must not coerce-copy anything."""

    def test_dense_gather_is_zero_copy(self, counting, rng):
        table = tensor(rng.normal(size=(20, 6)))
        counting.reset()
        out = take_rows(table, np.array([3, 1, 3, 7], dtype=np.int64))
        assert out.shape == (4, 6)
        assert counting.copies == 0

    @pytest.mark.parametrize("partition", ["range", "hash"])
    def test_sharded_gather_is_zero_copy(self, counting, rng, partition):
        values = rng.normal(size=(23, 5))
        store = ShardedStore(values, n_shards=3, partition=partition)
        counting.reset()
        ids = np.array([0, 22, 7, 7, 13], dtype=np.int64)
        out = store.gather(ids)
        np.testing.assert_array_equal(out.data, values[ids])
        assert counting.copies == 0

    def test_scatter_matched_dtype_is_zero_copy(self, counting, rng):
        # Contiguous float64 gradient into a float64 accumulator: the
        # ensure_contiguous pre-cast must elide entirely.
        idx = rng.integers(0, 50, size=2048)
        grad = np.ascontiguousarray(rng.normal(size=(2048, 4)))
        counting.reset()
        _scatter_rows_add(idx, grad, 50, np.float64)
        assert counting.copies == 0

    def test_scatter_narrow_grad_copies_once(self, counting, rng):
        idx = rng.integers(0, 50, size=2048)
        grad = rng.normal(size=(2048, 4)).astype(np.float32)
        counting.reset()
        _scatter_rows_add(idx, grad, 50, np.float64)
        assert counting.copies == 1


class TestScatterCache:
    @pytest.fixture(autouse=True)
    def _clean_cache(self):
        clear_scatter_cache()
        yield
        clear_scatter_cache()

    def _idx(self, rng, n=1024, n_rows=40):
        return rng.integers(0, n_rows, size=n)

    def test_same_index_object_hits(self, rng):
        idx = self._idx(rng)
        grad = rng.normal(size=(idx.size, 3))
        first = _scatter_rows_add(idx, grad, 40, np.float64)
        stats = scatter_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        second = _scatter_rows_add(idx, grad, 40, np.float64)
        stats = scatter_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        np.testing.assert_array_equal(first, second)

    def test_cached_path_matches_add_at(self, rng):
        idx = self._idx(rng)
        for _ in range(2):  # second pass exercises the cached operator
            grad = rng.normal(size=(idx.size, 3))
            reference = np.zeros((40, 3))
            np.add.at(reference, idx, grad)
            np.testing.assert_array_equal(
                _scatter_rows_add(idx, grad, 40, np.float64), reference
            )

    def test_identity_keying_rejects_recycled_ids(self, rng):
        # A different array with the same content must NOT hit: the key
        # is object identity (validated with ``is``), because the cache
        # trusts the caller's array to be the plan's immutable id array.
        idx_a = self._idx(rng)
        idx_b = idx_a.copy()
        grad = rng.normal(size=(idx_a.size, 2))
        _scatter_rows_add(idx_a, grad, 40, np.float64)
        _scatter_rows_add(idx_b, grad, 40, np.float64)
        stats = scatter_cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 0

    def test_lru_bound_and_eviction(self, rng):
        from repro.nn.tensor import _SCATTER_CACHE_CAPACITY

        keep = []
        for _ in range(_SCATTER_CACHE_CAPACITY + 8):
            idx = self._idx(rng)
            keep.append(idx)  # keep alive so ids stay distinct
            _scatter_rows_add(idx, np.ones((idx.size, 1)), 40, np.float64)
        stats = scatter_cache_stats()
        assert stats["size"] <= _SCATTER_CACHE_CAPACITY
        assert stats["evictions"] >= 8

    def test_small_scatters_bypass_cache(self, rng):
        idx = rng.integers(0, 8, size=64)  # below the sparse threshold
        _scatter_rows_add(idx, np.ones((64, 2)), 8, np.float64)
        assert scatter_cache_stats()["misses"] == 0
