"""Fig. 6 — case study of representation learning (PCA of group embeddings).

Trains full MGBR and MGBR-M-R, projects the embeddings of sampled deal
groups (initiator + item + participants) to 2-D with PCA, and compares
within-group tightness.

Shape expectation (paper Sec. III-I): under full MGBR the members of
one group are more concentrated relative to the spread between groups —
a *lower* dispersion ratio — than under MGBR-M-R, because the shared
experts and auxiliary losses pull co-group objects together.

This claim is the embedding-level signature of the -M-R ablation.  At
this reproduction's dense synthetic scale the -M family does not
collapse (see EXPERIMENTS.md's Table IV notes), so the tightness gap is
not guaranteed either; the bench asserts the study's structure and
*records* the ratio comparison with an explicit CONFIRMED /
NOT-REPRODUCED verdict instead of hard-failing on the sign.
"""

from conftest import BENCH_EPOCHS, bench_dataset, build_model, mgbr_bench_config, write_result

from repro.eval import run_case_study
from repro.training import TrainConfig, Trainer

N_GROUPS = 6
STUDY_SEED = 3


def _train(name, dataset):
    model = build_model(name, dataset)
    tc = TrainConfig.from_mgbr(
        model.config, epochs=BENCH_EPOCHS,
        eval_every=4, restore_best=True, eval_max_instances=100,
    )
    Trainer(model, dataset, tc).fit()
    model.eval()
    from repro.nn import no_grad

    with no_grad():
        model.refresh_cache()
    return model


def test_fig6_embedding_case_study(benchmark, bench_dataset):
    """Regenerate Fig. 6's tightness comparison."""

    def run():
        studies = {}
        for name in ("MGBR", "MGBR-M-R"):
            model = _train(name, bench_dataset)
            studies[name] = run_case_study(
                model, bench_dataset.train, n_groups=N_GROUPS, seed=STUDY_SEED
            )
        return studies

    studies = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["FIG. 6 — OBJECT EMBEDDING CASE STUDY (PCA, 2-D)"]
    for name, study in studies.items():
        lines.append(
            f"{name:10s} dispersion ratio (within/between): {study.dispersion_ratio:.4f}   "
            f"explained variance: {study.explained_variance.round(3).tolist()}"
        )
    ratio_full = studies["MGBR"].dispersion_ratio
    ratio_ablated = studies["MGBR-M-R"].dispersion_ratio
    lines.append(
        f"\npaper claim: MGBR groups tighter than MGBR-M-R -> "
        f"{ratio_full:.4f} < {ratio_ablated:.4f} "
        f"({'CONFIRMED' if ratio_full < ratio_ablated else 'NOT REPRODUCED'})"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("fig6_casestudy.txt", text)

    # Same groups, same PCA pipeline, both studies complete and sane.
    for study in studies.values():
        assert study.points.shape[1] == 2
        assert study.points.shape[0] == len(study.labels)
        assert 0 < study.dispersion_ratio < 100
        assert {"initiator", "item", "participant"} == set(study.roles)
    # Both studies projected the same sampled groups (paired comparison).
    import numpy as np

    np.testing.assert_array_equal(
        studies["MGBR"].labels, studies["MGBR-M-R"].labels
    )
