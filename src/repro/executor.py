"""Fused no-tape inference executor support: buffers, stats, resolution.

The planned scoring path normally runs on the autograd tape: every
primitive allocates a fresh result array and a graph node, even under
``no_grad`` where the node is pure overhead.  The *fused executor*
re-runs the exact same primitive sequence through a
:class:`FusedWorkspace` instead — preallocated buffers written in place
(``out=``) with **no** Tensor graph nodes — so a flush's transient
allocations collapse into a reusable pool.

Bit-parity contract
-------------------
At float64 the fused path is bit-identical to the tape (asserted in
tests/test_fused_executor.py and gated in BENCH_eval_throughput): every
workspace op performs the same backend primitive on the same operand
arrays as the tape — ``out=`` variants of NumPy ufuncs, ``matmul``,
``take``, ``stack``/``concatenate`` and axis reductions are bit-identical
to their allocating forms, and fold weights are read through the same
version-keyed caches (``folded_blocks_raw`` / ``stacked_folds_raw``) the
tape uses, so both executors multiply the identical cached arrays.
Under a float32 scope the workspace mirrors the tape's mixed-dtype rule:
an op whose operands are already the scope dtype runs buffered; an op
touching raw float64 parameters runs unbuffered and casts its *result*,
exactly like the Tensor wrapper does.

Buffer lifecycle
----------------
``begin(dtype)`` opens a flush: the slot cursor resets and each buffer
request takes the next slot, which holds one flat buffer sized to the
largest request that slot has seen (geometric growth).  Because the
fused program is deterministic, the same call sequence hits the same
slots on every flush — equal eval chunks reuse the pool exactly, and
serving flushes of *varying* size reuse it by capacity, keeping the
backing pages warm instead of faulting fresh ones inside the ufuncs.
A dtype switch (or blowing the byte cap after a pathological flush)
clears everything and counts an ``invalidation``.  Parameter
updates need no explicit hook: fold caches are version-keyed upstream,
so a bumped version yields a *new* fold array whose identity misses the
workspace's cast cache — invalidation is transitive.

In-place safety: ops only write into arrays the workspace itself
allocated this flush (tracked by identity, with strong references so
ids stay unique) — model parameters, fold caches and entity gathers are
never mutated.  Callers must copy results they hand out
(:meth:`repro.baselines.base.GroupBuyingRecommender.score_item_plan`
does) because buffers are recycled on the next flush.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.nn.backend import get_backend

__all__ = ["FusedWorkspace", "resolve_executor", "VALID_EXECUTORS"]

#: The executor knob's accepted values (model attribute, serving/eval
#: parameters).  ``"auto"`` defers to the ``REPRO_EXECUTOR`` environment
#: variable (read at call time, default ``"fused"``); gradients always
#: force the tape regardless.
VALID_EXECUTORS = ("auto", "fused", "tape")

#: Environment override consulted by ``"auto"`` (CI's tape-flip lane
#: runs the fast tests once with ``REPRO_EXECUTOR=tape``).
EXECUTOR_ENV = "REPRO_EXECUTOR"


def resolve_executor(mode: str, grad_enabled: bool = False) -> str:
    """Resolve an executor knob to the concrete ``"fused"``/``"tape"``.

    Gradient recording always wins: the fused path builds no graph, so
    training and gradcheck code transparently stay on the tape even with
    ``executor="fused"`` set on the model.
    """
    if mode not in VALID_EXECUTORS:
        raise ValueError(f"executor must be one of {VALID_EXECUTORS}, got {mode!r}")
    if grad_enabled:
        return "tape"
    if mode == "auto":
        mode = os.environ.get(EXECUTOR_ENV, "fused")
        if mode not in ("fused", "tape"):
            mode = "fused"
    return mode


class FusedWorkspace:
    """Preallocated buffers + counters backing one model's fused scoring.

    Not thread-safe by design: it belongs to a model, and models already
    carry the single-scorer-thread invariant (fold caches, bundle cache
    — see :meth:`repro.nn.layers.Linear.folded_blocks`).
    """

    #: Pool / cast-cache bounds.  The pool is bounded by *bytes*, not
    #: buffer count: slots hold one flat buffer each (capacity = largest
    #: request seen ×2 growth), so only a pathological giant flush can
    #: push it past the cap, and the next ``begin`` drops it.
    MAX_POOL_BYTES = 1 << 28  # 256 MiB
    MAX_CASTS = 256

    def __init__(self) -> None:
        self.dtype: Optional[np.dtype] = None
        self.b = get_backend()
        self.stats: Dict[str, int] = {
            "fused_calls": 0,
            "tape_calls": 0,
            "fallbacks": 0,
            "invalidations": 0,
        }
        # buffer_hits / buffer_misses live as plain ints (incremented on
        # every op — a dict update there is measurable) and are merged
        # into the public view by :meth:`snapshot`.
        self._hits = 0
        self._misses = 0
        # Slot-cursor pool: ``_pool[cursor]`` is one flat 1-D buffer per
        # slot; ``out`` hands back a reshaped prefix view.  Capacity
        # matching (not exact-shape matching) is what keeps the serving
        # path fast: flush sizes vary every time there, and a shape-keyed
        # pool would mmap fresh pages per flush — whose first-touch
        # faults then land *inside* the timed ufuncs (measured ~50-100ms
        # stalls under submitter contention).  One warm buffer per slot
        # serves every flush size up to the largest seen.  Each entry is
        # ``(flat_buffer, {shape: cached_view})``.
        self._pool: List[Optional[Tuple[np.ndarray, Dict]]] = []
        self._pool_bytes = 0
        self._cast_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._cursor = 0
        self._owned_ids: Set[int] = set()
        # Strong refs to every array owned this flush: keeps ids unique
        # (a gc'd temp's id could otherwise be recycled onto a foreign
        # array, which an in-place op would then corrupt).
        self._live: List[np.ndarray] = []
        # Row-parallel fused flush: per-slab child workspaces, one per
        # slab index, each with its own capacity-pooled buffers.  Slab
        # bodies write disjoint row slices of *shared* output arrays the
        # parent allocated, so children never touch each other's state.
        self._slabs: List["FusedWorkspace"] = []

    def snapshot(self) -> Dict[str, int]:
        """All counters, including the hot-path hit/miss ints."""
        merged = dict(self.stats)
        merged["buffer_hits"] = self._hits
        merged["buffer_misses"] = self._misses
        return merged

    # ------------------------------------------------------------------
    # Flush lifecycle
    # ------------------------------------------------------------------
    def begin(self, dtype) -> None:
        """Open a flush under ``dtype``; resets the slot cursor."""
        dt = np.dtype(dtype)
        if self.dtype is not None and dt != self.dtype:
            self._pool.clear()
            self._pool_bytes = 0
            self._cast_cache.clear()
            self.stats["invalidations"] += 1
        elif self._pool_bytes > self.MAX_POOL_BYTES:
            # One pathological giant flush shouldn't pin its buffers
            # forever; steady traffic never gets here.
            self._pool.clear()
            self._pool_bytes = 0
            self.stats["invalidations"] += 1
        self.dtype = dt
        self.b = get_backend()
        self._cursor = 0
        self._owned_ids.clear()
        self._live.clear()

    def _own(self, arr: np.ndarray) -> np.ndarray:
        self._owned_ids.add(id(arr))
        self._live.append(arr)
        return arr

    def owns(self, arr: np.ndarray) -> bool:
        """Whether ``arr`` is workspace-allocated (safe for in-place)."""
        return id(arr) in self._owned_ids

    def out(self, shape: Tuple[int, ...]) -> np.ndarray:
        """A ``shape`` view of the next slot's flat buffer (grown on miss).

        A *hit* means the slot's capacity covered the request — the view
        reuses already-touched pages, which is the entire point (see the
        pool comment in ``__init__``).  Growth is geometric so drifting
        serving flush sizes converge instead of reallocating per flush.
        """
        cursor = self._cursor
        self._cursor = cursor + 1
        pool = self._pool
        if cursor >= len(pool):
            pool.append(None)
        entry = pool[cursor]
        size = 1
        for dim in shape:
            size *= dim
        if entry is None or entry[0].size < size:
            cap = size
            if entry is not None:
                # The replaced buffer (and its cached views) may back
                # arrays handed out earlier this flush — keep them alive
                # so ids stay unique.
                self._live.append(entry[0])
                self._live.extend(entry[1].values())
                self._pool_bytes -= entry[0].nbytes
                cap = max(size, 2 * entry[0].size)
            entry = (self.b.empty((cap,), dtype=self.dtype), {})
            pool[cursor] = entry
            self._pool_bytes += entry[0].nbytes
            self._misses += 1
        else:
            self._hits += 1
        # Views are cached per shape so the steady hit path costs one
        # dict lookup, not a fresh slice+reshape object per op (the eval
        # chunks run ~100+ ops per call; object churn there is real
        # time).  The dict also keeps each view alive, so its id can
        # never be recycled onto a foreign array.
        views = entry[1]
        buf = views.get(shape)
        if buf is None:
            if len(views) >= 256:
                # Serving shape churn: don't grow view caches forever.
                self._live.extend(views.values())
                views.clear()
            buf = entry[0][:size].reshape(shape)
            views[shape] = buf
        self._owned_ids.add(id(buf))
        return buf

    # ------------------------------------------------------------------
    # Parameter-derived operands
    # ------------------------------------------------------------------
    def cast(self, arr: np.ndarray) -> np.ndarray:
        """``arr`` as the flush dtype, cached by array identity.

        Used for fold weights under a float32 scope (the tape casts them
        once per Tensor wrap; the workspace casts once per fold array).
        Identity keying is version-safe transitively: a parameter bump
        produces a new fold array upstream, which misses here.
        """
        dt = self.dtype
        if arr.dtype == dt:
            return arr
        key = id(arr)
        entry = self._cast_cache.get(key)
        if entry is not None and entry[0] is arr:
            return entry[1]
        if len(self._cast_cache) >= self.MAX_CASTS:
            self._cast_cache.clear()
        cast = self.b.asarray(arr, dt)
        self._cast_cache[key] = (arr, cast)
        return cast

    def scalar(self, value):
        """``value`` as a zero-dim scalar of the flush dtype."""
        return self.dtype.type(value)

    # ------------------------------------------------------------------
    # Row-parallel flush support (backends exposing ``row_partition``)
    # ------------------------------------------------------------------
    def row_partition(self, n_rows: int):
        """The active backend's slab grid for ``n_rows``, or ``None``.

        Only backends that chunk rows (``repro.nn.parallel``) provide
        ``row_partition``; everything else runs serial.  The grid is
        deterministic in ``(n_rows, threads, threshold)`` — never in
        runtime load — so a row-parallel fused program is bitwise
        reproducible across schedules.
        """
        partition = getattr(self.b, "row_partition", None)
        return partition(n_rows) if partition is not None else None

    def slab(self, i: int) -> "FusedWorkspace":
        """Child workspace for slab ``i`` (created once, pooled forever).

        Children carry their own slot pools (capacity-pooled like the
        parent's, so steady slab grids reuse warm pages) and must be
        ``begin``-ed by the *calling* thread each flush before slab
        bodies run on pool workers.
        """
        while len(self._slabs) <= i:
            self._slabs.append(FusedWorkspace())
        return self._slabs[i]

    def run_slabs(self, slabs, body) -> None:
        """Execute ``body(i, start, stop)`` for each slab, pool-parallel.

        Delegates to the backend's ``run_slabs`` (slab 0 inline on the
        caller, the rest on the persistent pool, submitting thread's
        backend installed in each worker); a backend without one runs
        the slabs serially in order — same results either way, because
        slab bodies write disjoint output slices.
        """
        runner = getattr(self.b, "run_slabs", None)
        if runner is None:
            for i, (start, stop) in enumerate(slabs):
                body(i, start, stop)
        else:
            runner(slabs, body)

    # ------------------------------------------------------------------
    # Primitives — each mirrors the tape's op bit-for-bit
    # ------------------------------------------------------------------
    @staticmethod
    def _ew_shape(a_shape: Tuple[int, ...], b_shape: Tuple[int, ...]):
        """Elementwise result shape, fast-pathing the two shapes the
        fused programs actually produce: equal operands and a trailing
        broadcast (bias row, scalar).  ``np.broadcast_shapes`` costs
        ~2µs a call, which at thousands of ops per flush is real time.
        """
        if a_shape == b_shape:
            return a_shape
        la, lb = len(a_shape), len(b_shape)
        if la >= lb and a_shape[la - lb:] == b_shape:
            return a_shape
        return np.broadcast_shapes(a_shape, b_shape)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        dt = self.dtype
        if a.dtype == dt and b.dtype == dt:
            if a.ndim == 2 and b.ndim == 2:
                shape = (a.shape[0], b.shape[1])
            elif a.shape[:-2] == b.shape[:-2]:
                shape = a.shape[:-2] + (a.shape[-2], b.shape[-1])
            else:
                shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2]) + (
                    a.shape[-2],
                    b.shape[-1],
                )
            return self.b.matmul(a, b, out=self.out(shape))
        # Mixed dtype (raw float64 parameter under a float32 scope):
        # compute raw, cast the result — the Tensor wrapper's rule.
        return self._own(self.b.asarray(self.b.matmul(a, b), dt))

    def matmul_stack(self, a: np.ndarray, mats, out=None) -> np.ndarray:
        """``stack([a @ m for m in mats], axis=1)`` without the stack.

        Each product is written straight into its ``out[:, j, :]`` slice
        of one pooled ``(rows, len(mats), d)`` buffer — bit-identical to
        matmul-then-stack (stack is a pure copy) while skipping a full
        memory pass over the bank.  ``out`` may be a view into a larger
        workspace-owned buffer (the dense MTL layers stack all three
        expert banks into one region so the gates' bank concatenations
        become zero-copy slices); views are only accepted on the
        matched-dtype path, so callers must check ``dtype`` first.
        """
        dt = self.dtype
        if a.dtype == dt and all(m.dtype == dt for m in mats):
            if out is None:
                out = self.out((a.shape[0], len(mats), mats[0].shape[1]))
            for j, m in enumerate(mats):
                self.b.matmul(a, m, out=out[:, j, :])
            return out
        if out is not None:
            raise ValueError("matmul_stack(out=) requires operands in the flush dtype")
        return self.stack([self.matmul(a, m) for m in mats], axis=1)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        dt = self.dtype
        if a.dtype == dt and b.dtype == dt:
            shape = self._ew_shape(a.shape, b.shape)
            if a.shape == shape and id(a) in self._owned_ids:
                return self.b.add(a, b, out=a)
            return self.b.add(a, b, out=self.out(shape))
        return self._own(self.b.asarray(self.b.add(a, b), dt))

    def multiply(self, a: np.ndarray, b) -> np.ndarray:
        dt = self.dtype
        b_dtype = getattr(b, "dtype", None)
        if a.dtype == dt and b_dtype == dt:
            shape = self._ew_shape(a.shape, np.shape(b))
            if a.shape == shape and id(a) in self._owned_ids:
                return self.b.multiply(a, b, out=a)
            return self.b.multiply(a, b, out=self.out(shape))
        return self._own(self.b.asarray(self.b.multiply(a, b), dt))

    def take(self, a: np.ndarray, index) -> np.ndarray:
        if type(index) is not np.ndarray or index.dtype != np.int64:
            index = np.asarray(index, dtype=np.int64)
        if a.dtype == self.dtype:
            out = self.out((index.shape[0],) + a.shape[1:])
            return self.b.take(a, index, out=out)
        return self._own(self.b.asarray(self.b.take(a, index), self.dtype))

    def stack(self, arrays, axis: int) -> np.ndarray:
        dt = self.dtype
        if all(a.dtype == dt for a in arrays):
            shape = list(arrays[0].shape)
            shape.insert(axis, len(arrays))
            return self.b.stack(arrays, axis=axis, out=self.out(tuple(shape)))
        return self._own(self.b.asarray(self.b.stack(arrays, axis=axis), dt))

    def concat(self, arrays, axis: int) -> np.ndarray:
        dt = self.dtype
        if all(a.dtype == dt for a in arrays):
            shape = list(arrays[0].shape)
            shape[axis] = sum(a.shape[axis] for a in arrays)
            return self.b.concatenate(arrays, axis=axis, out=self.out(tuple(shape)))
        return self._own(self.b.asarray(self.b.concatenate(arrays, axis=axis), dt))

    def sum(self, a: np.ndarray, axis: int) -> np.ndarray:
        dt = self.dtype
        if a.dtype == dt:
            axis = axis % a.ndim
            shape = tuple(s for i, s in enumerate(a.shape) if i != axis)
            return self.b.sum(a, axis=axis, out=self.out(shape))
        return self._own(self.b.asarray(self.b.sum(a, axis=axis), dt))

    def mix(self, weights: np.ndarray, bank: np.ndarray) -> np.ndarray:
        """Gate mixing ``(n, K) × (n, K, d) → (n, d)`` in one call.

        Performs exactly the tape's ``reshape → batched matmul →
        reshape`` sequence (the reshapes are views; the matmul is the
        identical primitive), collapsed into a single workspace op to
        keep per-op dispatch off the attend hot path.
        """
        b = self.b
        n, k = weights.shape
        d = bank.shape[2]
        w3 = b.reshape(weights, (n, 1, k))
        dt = self.dtype
        if weights.dtype == dt and bank.dtype == dt:
            out3 = self.out((n, 1, d))
            b.matmul(w3, bank, out=out3)
            out = b.reshape(out3, (n, d))
        else:
            out = b.reshape(self.b.asarray(b.matmul(w3, bank), dt), (n, d))
        self._owned_ids.add(id(out))
        self._live.append(out)
        return out

    def reshape(self, a: np.ndarray, shape) -> np.ndarray:
        out = self.b.reshape(a, shape)
        if self.owns(a):
            self._own(out)
        return out

    def softmax(self, x: np.ndarray) -> np.ndarray:
        """Shift-stabilised softmax over the last axis, in place when owned.

        The exact op sequence of :func:`repro.nn.functional.softmax`:
        ``shifted = x - max; ez = exp(shifted); ez / ez.sum`` — in-place
        ufunc applications of the same chain are bit-identical.  The row
        max is computed by a column sweep of ``maximum`` instead of
        ``amax(axis=-1)`` (NumPy's small-trailing-axis reduce is ~10x
        slower): max is order-independent and ``maximum`` propagates NaN
        exactly like ``amax``, so the sweep is bit-identical.  The exp
        *sum* must stay ``sum(axis=-1)`` — float addition is
        order-dependent and NumPy's pairwise reduction order differs
        from a left-to-right sweep.
        """
        b = self.b
        if x.ndim == 2 and x.shape[1] >= 2 and x.dtype == self.dtype:
            m = self.out((x.shape[0], 1))
            col = m[:, 0]
            b.maximum(x[:, 0], x[:, 1], out=col)
            for j in range(2, x.shape[1]):
                b.maximum(col, x[:, j], out=col)
        else:
            m = b.amax(x, axis=-1, keepdims=True)
        if not self.owns(x):
            x = self._own(b.subtract(x, m))
        else:
            b.subtract(x, m, out=x)
        b.exp(x, out=x)
        s = b.sum(x, axis=-1, keepdims=True)
        return b.divide(x, s, out=x)

    def relu(self, x: np.ndarray) -> np.ndarray:
        """``max(x, 0)`` via the tape's mask-multiply formulation."""
        mask = self.b.greater(x, 0)
        if self.owns(x) and x.dtype == self.dtype:
            return self.b.multiply(x, mask, out=x)
        return self.multiply(x, mask)
