"""The footnote-1 variant: participant-participant edges in G_UP.

The paper verified that adding p-p edges *slightly hurts* (footnote 1 in
Sec. II-C2).  These tests exercise the config plumbing for that variant
end to end — graph construction, model construction, one training step.
"""

import numpy as np

from repro.core import MGBR, MGBRConfig
from repro.graph import build_views
from repro.training import TrainConfig, Trainer


class TestFootnoteVariantPlumbing:
    def test_config_flag_adds_edges(self, tiny_dataset, small_config):
        base_views = build_views(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items
        )
        pp_views = build_views(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            include_participant_edges=True,
        )
        assert pp_views.a_up.nnz >= base_views.a_up.nnz

    def test_model_respects_flag(self, tiny_dataset, small_config):
        config = small_config.replace(include_participant_edges=True)
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=config,
        )
        base = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=small_config,
        )
        assert model.encoder.views.a_up.nnz >= base.encoder.views.a_up.nnz

    def test_variant_trains_one_epoch(self, tiny_dataset, small_config):
        config = small_config.replace(include_participant_edges=True)
        model = MGBR(
            tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items,
            config=config,
        )
        trainer = Trainer(
            model, tiny_dataset,
            TrainConfig(epochs=1, batch_size=32, train_negatives=2,
                        aux_negatives=2, learning_rate=5e-3, seed=0),
        )
        record = trainer.train_epoch()
        assert np.isfinite(record.losses["total"])
