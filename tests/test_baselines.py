"""Tests for the six baselines: shapes, gradients, tailoring contracts."""

import numpy as np
import pytest

from repro.baselines import EATNN, GBGCN, GBMF, NGCF, DeepMF, DiffNet
from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender


def _build_all(dataset, dim=8, seed=1):
    """One instance of every baseline over the dataset's train split."""
    return {
        "DeepMF": DeepMF(dataset.n_users, dataset.n_items, dim=dim, seed=seed),
        "NGCF": NGCF(dataset.train, dataset.n_users, dataset.n_items, dim=dim, seed=seed),
        "DiffNet": DiffNet(dataset.train, dataset.n_users, dataset.n_items, dim=dim, seed=seed),
        "EATNN": EATNN(dataset.n_users, dataset.n_items, dim=dim, seed=seed),
        "GBGCN": GBGCN(dataset.train, dataset.n_users, dataset.n_items, dim=dim, seed=seed),
        "GBMF": GBMF(dataset.n_users, dataset.n_items, dim=dim, seed=seed),
    }


class TestCommonContract:
    def test_all_models_score_both_tasks(self, tiny_dataset):
        users = np.array([0, 1, 2])
        items = np.array([0, 1, 2])
        parts = np.array([3, 4, 5])
        for name, model in _build_all(tiny_dataset).items():
            emb = model.compute_embeddings()
            s_a = model.score_items_from(emb, users, items)
            s_b = model.score_participants_from(emb, users, items, parts)
            assert s_a.shape == (3,), name
            assert s_b.shape == (3,), name
            assert np.all((s_a.data > 0) & (s_a.data < 1)), name
            assert np.all((s_b.data > 0) & (s_b.data < 1)), name

    def test_raw_flag_returns_logits(self, tiny_dataset):
        users, items, parts = np.array([0]), np.array([0]), np.array([1])
        for name, model in _build_all(tiny_dataset).items():
            emb = model.compute_embeddings()
            raw = model.score_items_from(emb, users, items, raw=True).data
            prob = model.score_items_from(emb, users, items).data
            np.testing.assert_allclose(1 / (1 + np.exp(-raw)), prob, atol=1e-12, err_msg=name)

    def test_gradients_flow_everywhere(self, tiny_dataset):
        users = np.array([0, 1])
        items = np.array([0, 1])
        parts = np.array([2, 3])
        for name, model in _build_all(tiny_dataset).items():
            emb = model.compute_embeddings()
            loss = (
                model.score_items_from(emb, users, items, raw=True).sum()
                + model.score_participants_from(emb, users, items, parts, raw=True).sum()
            )
            loss.backward()
            with_grads = sum(
                1 for p in model.parameters()
                if p.grad is not None and np.abs(p.grad).sum() > 0
            )
            assert with_grads > 0, name

    def test_no_baseline_supports_aux_losses(self, tiny_dataset):
        for name, model in _build_all(tiny_dataset).items():
            assert not model.supports_aux_losses, name

    def test_entity_embeddings_keys(self, tiny_dataset):
        for name, model in _build_all(tiny_dataset).items():
            tables = model.entity_embeddings()
            assert set(tables) == {"initiator", "item", "participant"}, name
            assert tables["initiator"].shape[0] == tiny_dataset.n_users, name

    def test_invalid_entity_counts(self):
        with pytest.raises(ValueError):
            DeepMF(0, 5)


class TestTaskBTailoring:
    def test_tailoring_ignores_item_for_all_baselines(self, tiny_dataset):
        # Sec. III-B: every baseline scores Task B by the u-p inner
        # product only; swapping the item must not change the score.
        # This is precisely the capability gap Table III measures.
        for name in ("DeepMF", "NGCF", "DiffNet", "EATNN", "GBGCN", "GBMF"):
            model = _build_all(tiny_dataset)[name]
            emb = model.compute_embeddings()
            u, p = np.array([0, 0]), np.array([4, 4])
            s = model.score_participants_from(emb, u, np.array([0, 1]), p).data
            assert s[0] == pytest.approx(s[1]), name

    def test_gbmf_task_b_uses_role_tables(self, tiny_dataset, monkeypatch):
        monkeypatch.delenv("REPRO_QUANTIZE", raising=False)  # needs dense tables
        # GBMF's Task-B inner product pairs the participant-role table
        # with the initiator-role table (they are independent).
        model = _build_all(tiny_dataset)["GBMF"]
        emb = model.compute_embeddings()
        u, i = np.array([0]), np.array([0])
        s = model.score_participants_from(emb, u, i, np.array([4])).data
        manual = 1 / (1 + np.exp(-(emb.user.data[0] * emb.participant.data[4]).sum()))
        assert s[0] == pytest.approx(manual)

    def test_eatnn_uses_social_domain_for_task_b(self, tiny_dataset):
        model = _build_all(tiny_dataset)["EATNN"]
        emb = model.compute_embeddings()
        # Task B scoring must use the social view (participant table).
        u, i = np.array([0]), np.array([0])
        s1 = model.score_participants_from(emb, u, i, np.array([1])).data
        manual = float(
            1 / (1 + np.exp(-(emb.participant.data[0] * emb.participant.data[1]).sum()))
        )
        assert s1[0] == pytest.approx(manual)


class TestRoleSeparation:
    def test_gbmf_role_tables_independent(self, tiny_dataset, monkeypatch):
        monkeypatch.delenv("REPRO_QUANTIZE", raising=False)  # needs dense tables
        model = _build_all(tiny_dataset)["GBMF"]
        emb = model.compute_embeddings()
        assert not np.allclose(emb.user.data, emb.participant.data)

    def test_gbgcn_roles_share_full_representation(self, tiny_dataset):
        # GBGCN stacks both role views into one user representation.
        model = _build_all(tiny_dataset)["GBGCN"]
        emb = model.compute_embeddings()
        assert emb.user.shape[1] == emb.item.shape[1]

    def test_deepmf_towers_change_dimensions(self, tiny_dataset):
        model = DeepMF(tiny_dataset.n_users, tiny_dataset.n_items, dim=12, out_dim=5, seed=0)
        emb = model.compute_embeddings()
        assert emb.user.shape[1] == 5
        assert emb.item.shape[1] == 5


class TestParameterScale:
    def test_eatnn_has_most_user_parameters(self, tiny_dataset):
        # Table V's narrative: EATNN's triple user tables dominate.
        models = _build_all(tiny_dataset)
        assert models["EATNN"].num_parameters() > models["DeepMF"].num_parameters()
        assert models["EATNN"].num_parameters() > models["GBMF"].num_parameters()

    def test_gbmf_larger_than_deepmf_tables(self, tiny_dataset):
        # GBMF has two user tables vs DeepMF's one (plus towers).
        models = _build_all(tiny_dataset)
        gbmf_tables = models["GBMF"].num_parameters()
        assert gbmf_tables > 0

    def test_deterministic_construction(self, tiny_dataset):
        a = NGCF(tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=7)
        b = NGCF(tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=7)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestDiffNetStructure:
    def test_social_diffusion_uses_cogroup_graph(self, tiny_dataset):
        model = _build_all(tiny_dataset)["DiffNet"]
        # Row-stochastic social operator.
        sums = np.asarray(model.social_mean.sum(axis=1)).ravel()
        nonzero = sums[sums > 0]
        np.testing.assert_allclose(nonzero, 1.0)

    def test_interest_mean_rows_normalized(self, tiny_dataset):
        model = _build_all(tiny_dataset)["DiffNet"]
        sums = np.asarray(model.interest_mean.sum(axis=1)).ravel()
        nonzero = sums[sums > 0]
        np.testing.assert_allclose(nonzero, 1.0)
