"""Sec. II-H — empirical time-complexity of the multi-task module.

The paper derives O(L·K·d²) per sample for the expert/gate stack,
dominated by the d² expert projections.  This bench measures the wall
clock of an MTL forward pass across embedding widths and checks the
quadratic trend: doubling d must scale time by clearly more than a
linear model would, and the per-(K, L) scaling must be ~linear.
"""

import time

import numpy as np
import pytest
from conftest import write_result

from repro.core.config import MGBRConfig
from repro.core.mtl import MultiTaskModule
from repro.nn import tensor

BATCH = 256


def _forward_seconds(d: int, n_experts: int = 3, mtl_layers: int = 2, repeats: int = 5) -> float:
    config = MGBRConfig.small(d=d, n_experts=n_experts, mtl_layers=mtl_layers, seed=0)
    module = MultiTaskModule(config, seed=0)
    rng = np.random.default_rng(0)
    vd = config.view_dim
    e_u = tensor(rng.normal(size=(BATCH, vd)))
    e_i = tensor(rng.normal(size=(BATCH, vd)))
    e_p = tensor(rng.normal(size=(BATCH, vd)))
    module(e_u, e_i, e_p)  # warm-up
    started = time.perf_counter()
    for _ in range(repeats):
        module(e_u, e_i, e_p)
    return (time.perf_counter() - started) / repeats


def test_complexity_quadratic_in_d(benchmark):
    """Empirical check of the O(d²) term (Sec. II-H).

    At small widths the Python-level op overhead dominates (the curve
    looks flat); the d² projections take over in the upper range, so the
    assertion targets the 32→128 quadrupling where quadratic scaling
    predicts ~16x, linear ~4x, and pure overhead ~1x.
    """

    def run():
        return {d: _forward_seconds(d) for d in (16, 32, 64, 128)}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["SEC. II-H — MTL FORWARD TIME vs EMBEDDING WIDTH d (batch 256)"]
    for d, seconds in timings.items():
        lines.append(f"  d={d:3d}   {seconds * 1e3:8.2f} ms")
    ratio = timings[128] / timings[32]
    lines.append(
        f"  time(128)/time(32) = {ratio:.1f}x "
        f"(quadratic predicts ~16x, linear ~4x, overhead ~1x)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("complexity_d.txt", text)

    # The d² term must be visible: clearly above pure-overhead scaling
    # and approaching the linear-to-quadratic band.
    assert ratio > 3.0
    # And growth accelerates with d (convexity of the timing curve).
    assert timings[128] / timings[64] > timings[32] / timings[16]


def test_complexity_linear_in_experts(benchmark):
    """Doubling K roughly doubles the expert work (the K term of O(LKd²))."""

    def run():
        return {k: _forward_seconds(24, n_experts=k) for k in (2, 4, 8)}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["SEC. II-H — MTL FORWARD TIME vs EXPERT COUNT K (d=24)"]
    for k, seconds in timings.items():
        lines.append(f"  K={k}   {seconds * 1e3:8.2f} ms")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("complexity_k.txt", text)

    # Monotone in K, and sub-quadratic (attention etc. add overhead that
    # scales linearly as well).
    assert timings[2] < timings[4] < timings[8]
    assert timings[8] < timings[2] * 8


def test_complexity_linear_in_layers(benchmark):
    """Doubling L roughly doubles the stack time (the L term)."""

    def run():
        return {l: _forward_seconds(24, mtl_layers=l) for l in (1, 2, 4)}

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["SEC. II-H — MTL FORWARD TIME vs LAYER COUNT L (d=24)"]
    for l, seconds in timings.items():
        lines.append(f"  L={l}   {seconds * 1e3:8.2f} ms")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("complexity_l.txt", text)

    assert timings[1] < timings[2] < timings[4]
