"""Tests for utility modules: RNG plumbing, validation, logging."""

import logging

import numpy as np
import pytest

from repro.utils import (
    as_rng,
    check_index_array,
    check_positive,
    check_probability,
    check_unit_interval,
    get_logger,
    spawn_rngs,
)
from repro.utils.rng import RngMixin, choice_excluding


class TestAsRng:
    def test_int_seed_deterministic(self):
        a = as_rng(5).integers(0, 100, 10)
        b = as_rng(5).integers(0, 100, 10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(3)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            as_rng("seed")


class TestSpawn:
    def test_children_independent_of_count(self):
        # Stream k must not depend on how many siblings were spawned.
        three = spawn_rngs(7, 3)
        five = spawn_rngs(7, 5)
        np.testing.assert_array_equal(
            three[1].integers(0, 1000, 5), five[1].integers(0, 1000, 5)
        )

    def test_children_differ(self):
        a, b = spawn_rngs(1, 2)
        assert not np.array_equal(a.integers(0, 1000, 20), b.integers(0, 1000, 20))

    def test_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 2)
        assert len(children) == 2


class TestChoiceExcluding:
    def test_never_returns_excluded(self, rng):
        out = choice_excluding(rng, 20, {3, 7, 11}, 500)
        assert not set(out.tolist()) & {3, 7, 11}
        assert np.all((out >= 0) & (out < 20))

    def test_dense_exclusion_path(self, rng):
        # Excluding >50% of the range switches to the complement draw.
        exclude = set(range(15))
        out = choice_excluding(rng, 20, exclude, 100)
        assert set(out.tolist()) <= {15, 16, 17, 18, 19}

    def test_nothing_left_raises(self, rng):
        with pytest.raises(ValueError):
            choice_excluding(rng, 3, {0, 1, 2}, 1)

    def test_negative_size(self, rng):
        with pytest.raises(ValueError):
            choice_excluding(rng, 10, set(), -1)

    def test_empty_exclusion(self, rng):
        out = choice_excluding(rng, 5, set(), 50)
        assert np.all((out >= 0) & (out < 5))


class TestRngMixin:
    def test_lazy_creation_and_seeding(self):
        class Thing(RngMixin):
            pass

        t = Thing()
        assert isinstance(t.rng, np.random.Generator)
        t.seed(3)
        a = t.rng.integers(0, 100, 5)
        t.seed(3)
        np.testing.assert_array_equal(a, t.rng.integers(0, 100, 5))


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        check_positive("x", 0.0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_unit_interval_open(self):
        check_unit_interval("a", 0.5, open_ends=True)
        with pytest.raises(ValueError):
            check_unit_interval("a", 0.0, open_ends=True)

    def test_check_index_array_pass(self):
        out = check_index_array("idx", [0, 2, 4], high=5)
        assert out.dtype == np.int64

    def test_check_index_array_scalar_promoted(self):
        assert check_index_array("idx", 3, high=5).shape == (1,)

    def test_check_index_array_bounds(self):
        with pytest.raises(IndexError):
            check_index_array("idx", [0, 9], high=5)
        with pytest.raises(IndexError):
            check_index_array("idx", [-1], high=5)

    def test_check_index_array_non_integer(self):
        with pytest.raises(TypeError):
            check_index_array("idx", [0.5], high=5)
        # Integral floats are accepted.
        check_index_array("idx", [1.0, 2.0], high=5)

    def test_check_index_array_2d_rejected(self):
        with pytest.raises(ValueError):
            check_index_array("idx", np.zeros((2, 2)), high=5)


class TestLogging:
    def test_namespacing(self):
        assert get_logger("training").name == "repro.training"
        assert get_logger().name == "repro"
        assert get_logger("repro.x").name == "repro.x"

    def test_logger_is_singleton_per_name(self):
        assert get_logger("a") is get_logger("a")

    def test_configure_sets_level(self):
        from repro.utils.logging import configure_logging

        root = configure_logging(level=logging.WARNING)
        assert root.level == logging.WARNING
