"""Train/validation/test partitioning of deal groups.

The paper splits at the *group* level with ratio 7:3:1 (Sec. III-A2).
Splitting whole groups (rather than individual samples) keeps each
group's Task-A pair and Task-B triples in the same split, preventing
leakage of a test group's participants into training.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.data.schema import DealGroup
from repro.utils.rng import SeedLike, as_rng

__all__ = ["split_groups"]


def split_groups(
    groups: Sequence[DealGroup],
    ratios: Tuple[float, float, float] = (7, 3, 1),
    seed: SeedLike = None,
) -> Tuple[List[DealGroup], List[DealGroup], List[DealGroup]]:
    """Shuffle and partition ``groups`` by ``ratios`` (normalized to 1).

    Returns ``(train, validation, test)``.  Every group lands in exactly
    one split; rounding remainders go to the training split.
    """
    if len(ratios) != 3:
        raise ValueError(f"need exactly three ratios, got {ratios}")
    total = float(sum(ratios))
    if total <= 0 or any(r < 0 for r in ratios):
        raise ValueError(f"ratios must be non-negative and sum > 0, got {ratios}")
    rng = as_rng(seed)
    order = np.arange(len(groups))
    rng.shuffle(order)
    n = len(groups)
    n_val = int(np.floor(n * ratios[1] / total))
    n_test = int(np.floor(n * ratios[2] / total))
    n_train = n - n_val - n_test
    shuffled = [groups[k] for k in order]
    train = shuffled[:n_train]
    validation = shuffled[n_train : n_train + n_val]
    test = shuffled[n_train + n_val :]
    return train, validation, test
