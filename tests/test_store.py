"""Sharded embedding store: layout parity, checkpoints, sparse updates.

The contract under test (docs/sharding.md): *storage layout is
unobservable* — a model whose tables live in a
:class:`repro.store.ShardedStore` (any shard count, range or hash
partition) produces bit-identical scores, losses, gradients and trained
weights to the dense single-table layout at float64, and checkpoints
move freely between layouts (dense ↔ N shards ↔ M shards, single-file
or per-shard files).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GBMF
from repro.core import MGBR, MGBRConfig
from repro.eval.protocol import EvalProtocol
from repro.nn.layers import Embedding
from repro.nn.optim import Adam
from repro.nn.tensor import no_grad
from repro.plan import PlannedBatch, ScoringPlan
from repro.serving import RequestBatcher
from repro.store import (
    DenseStore,
    Partitioner,
    ShardedStore,
    iter_stores,
    make_store,
)
from repro.training import TrainConfig, Trainer
from repro.training.checkpoint import load_checkpoint, restore_model, save_checkpoint


def _table(rows=23, dim=5, seed=0):
    return np.random.default_rng(seed).normal(size=(rows, dim))


# ---------------------------------------------------------------------------
# Partitioner / shard maps
# ---------------------------------------------------------------------------
class TestPartitioner:
    @pytest.mark.parametrize("kind", ["range", "hash"])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7, 40])
    def test_owned_ids_partition_the_id_space(self, kind, n_shards):
        part = Partitioner(23, n_shards, kind)
        owned = [part.owned_ids(k) for k in range(n_shards)]
        assert sorted(np.concatenate(owned).tolist()) == list(range(23))
        for k, ids in enumerate(owned):
            assert len(ids) == part.shard_size(k)
            np.testing.assert_array_equal(part.owner(ids), np.full(len(ids), k))
            # to_local inverts owned_ids: the k-th shard's rows index 0..len-1.
            np.testing.assert_array_equal(part.to_local(ids), np.arange(len(ids)))

    def test_range_shards_balanced(self):
        part = Partitioner(23, 4, "range")
        sizes = [part.shard_size(k) for k in range(4)]
        assert sizes == [6, 6, 6, 5]  # ceil bound: no shard above ceil(23/4)
        assert max(sizes) == -(-23 // 4)

    def test_build_map_groups_by_owner(self):
        part = Partitioner(20, 3, "hash")
        ids = np.array([4, 1, 9, 4, 17, 0])
        smap = part.build_map(ids)
        grouped_logical = []
        for k, local in enumerate(smap.per_shard_local):
            grouped_logical.extend((part.owned_ids(k)[local]).tolist())
        # Reassembling with the inverse permutation restores request order.
        np.testing.assert_array_equal(np.asarray(grouped_logical)[smap.inverse], ids)
        assert smap.shards_touched == 3
        assert smap.max_shard_rows == max(len(l) for l in smap.per_shard_local)

    def test_sorted_unique_ids_are_identity_under_range(self):
        part = Partitioner(50, 4, "range")
        smap = part.build_map(np.array([1, 5, 12, 13, 40, 49]))
        assert smap.identity

    def test_out_of_range_ids_rejected(self):
        part = Partitioner(10, 2)
        with pytest.raises(ValueError, match="ids must lie"):
            part.build_map(np.array([0, 10]))
        with pytest.raises(ValueError, match="ids must lie"):
            part.build_map(np.array([-1]))

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="n_shards"):
            Partitioner(10, 0)
        with pytest.raises(ValueError, match="kind"):
            Partitioner(10, 2, "modulo")


# ---------------------------------------------------------------------------
# Store gather / scatter-add parity
# ---------------------------------------------------------------------------
class TestStoreParity:
    @pytest.mark.parametrize("kind", ["range", "hash"])
    @pytest.mark.parametrize("n_shards", [2, 3, 5, 40])
    def test_gather_values_bitwise_equal_dense(self, kind, n_shards):
        values = _table()
        dense = DenseStore(values.copy())
        sharded = ShardedStore(values.copy(), n_shards, kind)
        ids = np.array([0, 7, 7, 22, 3, 7, 11])  # duplicates included
        with no_grad():
            np.testing.assert_array_equal(
                sharded.gather(ids).data, dense.gather(ids).data
            )
            np.testing.assert_array_equal(sharded.all().data, dense.all().data)
        assert sharded.logical_state().tolist() == values.tolist()

    def test_empty_gather(self):
        sharded = ShardedStore(_table(), 3)
        with no_grad():
            out = sharded.gather(np.empty(0, dtype=np.int64))
        assert out.shape == (0, 5)

    @pytest.mark.parametrize("kind", ["range", "hash"])
    def test_gather_gradients_bitwise_equal_dense(self, kind):
        values = _table(rows=31, dim=4, seed=3)
        dense = DenseStore(values.copy())
        sharded = ShardedStore(values.copy(), 4, kind)
        ids = np.random.default_rng(7).integers(0, 31, size=600)
        grad = np.random.default_rng(8).normal(size=(600, 4))

        (dense.gather(ids) * grad).sum().backward()
        (sharded.gather(ids) * grad).sum().backward()
        np.testing.assert_array_equal(
            dense.weight.grad,
            _logical_grad(sharded),
        )

    @pytest.mark.parametrize("kind", ["range", "hash"])
    def test_all_gradients_bitwise_equal_dense(self, kind):
        values = _table(rows=11, dim=3, seed=5)
        dense = DenseStore(values.copy())
        sharded = ShardedStore(values.copy(), 3, kind)
        grad = np.random.default_rng(9).normal(size=(11, 3))
        (dense.all() * grad).sum().backward()
        (sharded.all() * grad).sum().backward()
        np.testing.assert_array_equal(dense.weight.grad, _logical_grad(sharded))

    def test_touched_rows_recorded_per_shard(self):
        sharded = ShardedStore(_table(rows=12, dim=2), 3)  # 4 rows per shard
        sharded.gather(np.array([0, 1, 5, 5]))
        touched = {
            k: p.touched_rows for k, (_, p) in enumerate(sharded.named_parameters())
        }
        np.testing.assert_array_equal(touched[0], [0, 1])   # rows 0,1 local to shard 0
        np.testing.assert_array_equal(touched[1], [1])      # row 5 local 1 in shard 1
        assert touched[2] is None

    def test_touched_rows_not_recorded_under_no_grad(self):
        sharded = ShardedStore(_table(), 2)
        with no_grad():
            sharded.gather(np.array([1, 2]))
        assert all(p.touched_rows is None for _, p in sharded.named_parameters())

    def test_stats_counters(self):
        sharded = ShardedStore(_table(rows=20, dim=2), 4)
        with no_grad():
            sharded.gather(np.array([0, 6, 19]))
        assert sharded.stats["gathers"] == 1
        assert sharded.stats["rows_gathered"] == 3
        assert sharded.stats["shard_touches"] == 3
        assert sharded.stats["max_shard_gather_rows"] == 1
        assert sharded.resident_rows() == [5, 5, 5, 5]

    def test_make_store_layouts(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUANTIZE", raising=False)  # default layouts
        assert isinstance(make_store(_table(), 0), DenseStore)
        assert isinstance(make_store(_table(), 1), DenseStore)
        assert isinstance(make_store(_table(), 2), ShardedStore)
        with pytest.raises(ValueError, match="n_shards"):
            make_store(_table(), -1)


def _logical_grad(store: ShardedStore) -> np.ndarray:
    out = np.zeros((store.num_rows, store.dim))
    for k, (_, p) in enumerate(store.named_parameters()):
        out[store.partitioner.owned_ids(k)] = (
            p.grad if p.grad is not None else np.zeros_like(p.data)
        )
    return out


# ---------------------------------------------------------------------------
# Embedding layer over stores
# ---------------------------------------------------------------------------
class TestEmbeddingDelegation:
    def test_dense_default_keeps_weight_identity(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUANTIZE", raising=False)  # weight identity
        emb = Embedding(6, 3, seed=0)
        assert emb.all() is emb.weight
        assert isinstance(emb.store, DenseStore)
        assert list(emb.state_dict()) == ["weight"]

    def test_sharded_forward_matches_dense(self):
        dense = Embedding(9, 4, seed=1)
        sharded = Embedding(9, 4, seed=1, n_shards=3)
        idx = np.array([8, 0, 3, 3])
        with no_grad():
            np.testing.assert_array_equal(dense(idx).data, sharded(idx).data)

    def test_sharded_registers_shard_parameters(self):
        emb = Embedding(9, 4, seed=1, n_shards=3)
        names = [name for name, _ in emb.named_parameters()]
        assert names == ["shard0", "shard1", "shard2"]
        # ... but the canonical checkpoint entry stays the logical table.
        state = emb.state_dict()
        assert list(state) == ["weight"] and state["weight"].shape == (9, 4)

    def test_state_roundtrip_across_layouts(self):
        src = Embedding(9, 4, seed=1, n_shards=3)
        dst_dense = Embedding(9, 4, seed=2)
        dst_hash = Embedding(9, 4, seed=3, n_shards=2, partition="hash")
        dst_dense.load_state_dict(src.state_dict())
        dst_hash.load_state_dict(src.state_dict())
        np.testing.assert_array_equal(
            dst_dense.store.logical_state(), src.store.logical_state()
        )
        np.testing.assert_array_equal(
            dst_hash.store.logical_state(), src.store.logical_state()
        )

    def test_dtype_rebind_applies_to_every_shard(self):
        emb = Embedding(9, 4, seed=1, n_shards=3)
        emb.load_state_dict(emb.state_dict(), dtype=np.float32)
        assert all(p.data.dtype == np.float32 for _, p in emb.named_parameters())

    def test_store_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="store holds"):
            Embedding(9, 4, store=DenseStore(_table(5, 4)))


# ---------------------------------------------------------------------------
# Plan-driven shard maps
# ---------------------------------------------------------------------------
class TestPlanShardMaps:
    def test_shard_map_cached_per_partitioner(self):
        plan = ScoringPlan.for_items(np.array([1, 2]), np.array([[3, 4], [3, 5]]))
        part = Partitioner(10, 2)
        first = plan.shard_map("users", part)
        assert plan.shard_map("users", part) is first
        # A different layout gets its own map.
        other = plan.shard_map("users", Partitioner(10, 3))
        assert other is not first

    def test_shard_map_roles(self):
        plan = ScoringPlan.from_triples(
            np.array([1, 1, 2]), np.array([0, 0, 1]), np.array([4, 4, 5])
        )
        part = Partitioner(10, 2)
        assert plan.shard_map("participants", part).n_rows == len(
            plan.unique_participants
        )
        assert plan.shard_map("pair_users", part).n_rows == plan.n_pairs
        with pytest.raises(ValueError, match="unknown shard-map role"):
            plan.shard_map("nope", part)

    def test_pair_plan_has_no_participants_role(self):
        plan = ScoringPlan.from_item_pairs(np.array([1]), np.array([2]))
        with pytest.raises(ValueError, match="empty on a pair plan"):
            plan.shard_map("participants", Partitioner(10, 2))

    def test_gather_rejects_ids_diverging_from_plan_role(self):
        """A plan-cached shard map only answers for the plan's own ids."""
        store = ShardedStore(_table(rows=10, dim=2), 2)
        plan = ScoringPlan.from_item_pairs(np.array([1, 2, 3]), np.array([0, 0, 0]))
        with no_grad():
            ok = store.gather(plan.unique_users, plan=plan, role="users")
            assert ok.shape == (3, 2)
            with pytest.raises(ValueError, match="do not match the plan"):
                store.gather(np.array([1, 2]), plan=plan, role="users")

    def test_planned_batch_delegates(self):
        batch = PlannedBatch.build(
            {"pos": (np.array([1, 2]), np.array([3, 4]), None, (2,))}
        )
        part = Partitioner(10, 2)
        assert batch.shard_map("users", part) is batch.plan.shard_map("users", part)


# ---------------------------------------------------------------------------
# Model-level layout parity (the acceptance criterion)
# ---------------------------------------------------------------------------
def _gbmf(tiny_dataset, n_shards=0, partition="range"):
    return GBMF(
        tiny_dataset.n_users, tiny_dataset.n_items, dim=8, seed=4,
        n_shards=n_shards, partition=partition,
    )


def _mgbr(tiny_dataset, n_shards=0, partition="range"):
    config = MGBRConfig.small(
        d=8, n_experts=2, mtl_layers=2, aux_negatives=4, train_negatives=3, seed=3,
        embedding_shards=n_shards, embedding_partition=partition,
    )
    return MGBR(
        tiny_dataset.train, tiny_dataset.n_users, tiny_dataset.n_items, config=config
    )


class TestLayoutParity:
    @pytest.mark.parametrize("partition", ["range", "hash"])
    def test_gbmf_eval_metrics_bit_identical(self, tiny_dataset, partition):
        protocol = EvalProtocol(tiny_dataset, n_negatives=5, cutoff=5, max_instances=40)
        dense = protocol.run(_gbmf(tiny_dataset)).flat()
        sharded = protocol.run(_gbmf(tiny_dataset, 3, partition)).flat()
        assert dense == sharded

    @pytest.mark.parametrize("partition", ["range", "hash"])
    def test_mgbr_eval_metrics_bit_identical(self, tiny_dataset, partition):
        protocol = EvalProtocol(tiny_dataset, n_negatives=5, cutoff=5, max_instances=30)
        dense = protocol.run(_mgbr(tiny_dataset)).flat()
        sharded = protocol.run(_mgbr(tiny_dataset, 3, partition)).flat()
        assert dense == sharded

    @pytest.mark.parametrize("build", [_gbmf, _mgbr], ids=["gbmf", "mgbr"])
    def test_planned_training_bit_identical(self, tiny_dataset, build):
        """Two epochs of the (auto-routed) step: losses AND weights match."""
        def run(n_shards):
            model = build(tiny_dataset, n_shards)
            trainer = Trainer(
                model, tiny_dataset,
                TrainConfig(
                    epochs=2, batch_size=16, train_negatives=3, aux_negatives=4,
                    learning_rate=5e-3, seed=0,
                ),
            )
            losses = [trainer.train_epoch().losses for _ in range(2)]
            return losses, model.state_dict()

        dense_losses, dense_state = run(0)
        shard_losses, shard_state = run(3)
        assert dense_losses == shard_losses
        assert set(dense_state) == set(shard_state)
        for key in dense_state:
            np.testing.assert_array_equal(dense_state[key], shard_state[key])

    def test_sharded_gbmf_never_materialises_tables(self, tiny_dataset):
        """Planned scoring touches each shard once and only gathers rows."""
        model = _gbmf(tiny_dataset, n_shards=4)
        users = np.arange(10)
        cands = np.tile(np.arange(8), (10, 1))
        with no_grad():
            model.refresh_cache()
            planned = model.score_items_matrix(users, cands, dedup=True)
            flat = model.score_items_matrix(users, cands, dedup=False)
        np.testing.assert_array_equal(planned, flat)
        store = model.initiator_table.store
        assert store.stats["gathers"] >= 1
        # One planned Task-A call = at most one touch per shard.
        assert store.stats["shard_touches"] <= store.stats["gathers"] * store.n_shards
        assert store.stats["max_gather_rows"] <= len(users) * cands.shape[1]

    def test_entity_embeddings_with_stores(self, tiny_dataset):
        model = _gbmf(tiny_dataset, n_shards=3)
        tables = model.entity_embeddings()
        assert tables["initiator"].shape == (tiny_dataset.n_users, 8)


# ---------------------------------------------------------------------------
# Checkpoints across shard counts
# ---------------------------------------------------------------------------
class TestShardCheckpoints:
    def _scores(self, model, users, items):
        with no_grad():
            model.refresh_cache()
            out = np.asarray(model.score_items(users, items).data).copy()
        model.invalidate_cache()
        return out

    @pytest.mark.parametrize("src_shards,dst_shards", [(0, 3), (3, 0), (4, 2), (3, 3)])
    def test_single_file_roundtrip_across_layouts(
        self, tiny_dataset, tmp_path, src_shards, dst_shards
    ):
        """Save with N shards, restore with M — scores bit-identical."""
        src = _gbmf(tiny_dataset, src_shards)
        dst = _gbmf(tiny_dataset, dst_shards)
        # Make dst's weights genuinely different before the restore.
        dst.item_table.store.load_logical(
            dst.item_table.store.logical_state() + 1.0
        )
        path = save_checkpoint(src, tmp_path / "model.npz")
        meta = restore_model(dst, path)
        assert meta["model_class"] == "GBMF"
        users = np.arange(12)
        items = np.arange(12) % tiny_dataset.n_items
        np.testing.assert_array_equal(
            self._scores(src, users, items), self._scores(dst, users, items)
        )

    @pytest.mark.parametrize("dst_shards", [0, 2, 5])
    def test_per_shard_files_roundtrip(self, tiny_dataset, tmp_path, dst_shards):
        src = _gbmf(tiny_dataset, n_shards=3)
        path = save_checkpoint(src, tmp_path / "model.npz", shard_files=True)
        # The sharded tables left the main archive into per-shard files.
        payload = load_checkpoint(path, assemble_shards=False)
        assert "initiator_table.weight" not in payload["state"]
        manifest = payload["meta"]["shards"]
        assert manifest["initiator_table.weight"]["n_shards"] == 3
        for spec in manifest.values():
            for file_name in spec["files"]:
                assert (tmp_path / file_name).exists()
        # Default load reassembles the logical tables…
        assembled = load_checkpoint(path)
        np.testing.assert_array_equal(
            assembled["state"]["initiator_table.weight"],
            src.initiator_table.store.logical_state(),
        )
        # …while restore_model streams the shard files into any layout.
        dst = _gbmf(tiny_dataset, n_shards=dst_shards)
        dst.initiator_table.store.load_logical(
            dst.initiator_table.store.logical_state() * 2.0
        )
        restore_model(dst, path)
        users = np.arange(12)
        items = np.arange(12) % tiny_dataset.n_items
        np.testing.assert_array_equal(
            self._scores(src, users, items), self._scores(dst, users, items)
        )

    def test_per_shard_files_float32_restore(self, tiny_dataset, tmp_path):
        src = _gbmf(tiny_dataset, n_shards=3)
        path = save_checkpoint(
            src, tmp_path / "m32.npz", dtype="float32", shard_files=True
        )
        dst = _gbmf(tiny_dataset, n_shards=2)
        restore_model(dst, path, dtype="float32")
        for _, store in iter_stores(dst):
            for _, param in store.named_parameters():
                assert param.data.dtype == np.float32

    def test_shard_files_save_never_materialises_tables(
        self, tiny_dataset, tmp_path, monkeypatch
    ):
        """The per-shard writer must stream shard buffers directly —
        building a logical table would defeat the memory model on a
        catalog that doesn't fit in RAM."""
        src = _gbmf(tiny_dataset, n_shards=3)
        calls = []
        original = ShardedStore.logical_state
        monkeypatch.setattr(
            ShardedStore, "logical_state",
            lambda self: (calls.append(1), original(self))[1],
        )
        save_checkpoint(src, tmp_path / "stream.npz", shard_files=True)
        assert not calls, "shard_files save materialised a logical table"

    def test_fully_sharded_meta_reports_shard_dtype(self, tiny_dataset, tmp_path):
        """GBMF is table-only: with shard_files=True the main payload is
        empty, and the recorded dtype must come from the shard buffers."""
        src = _gbmf(tiny_dataset, n_shards=3)
        for _, store in iter_stores(src):
            store.rebind_dtype(np.float32)
        path = save_checkpoint(src, tmp_path / "all32.npz", shard_files=True)
        payload = load_checkpoint(path)
        assert payload["meta"]["dtype"] == "float32"
        assert all(v.dtype == np.float32 for v in payload["state"].values())

    def test_strict_restore_catches_missing_store(self, tiny_dataset, tmp_path):
        src = _gbmf(tiny_dataset, n_shards=3)
        path = save_checkpoint(src, tmp_path / "model.npz", shard_files=True)
        wrong = GBMF(tiny_dataset.n_users + 1, tiny_dataset.n_items, dim=8, seed=4)
        with pytest.raises((KeyError, ValueError)):
            restore_model(wrong, path)

    def test_mgbr_checkpoint_across_layouts(self, tiny_dataset, tmp_path):
        src = _mgbr(tiny_dataset, n_shards=3)
        path = save_checkpoint(src, tmp_path / "mgbr.npz", shard_files=True)
        dst = _mgbr(tiny_dataset, n_shards=0)
        restore_model(dst, path)
        protocol = EvalProtocol(tiny_dataset, n_negatives=5, cutoff=5, max_instances=20)
        assert protocol.run(src).flat() == protocol.run(dst).flat()


# ---------------------------------------------------------------------------
# Sparse (lazy-row) optimizer updates
# ---------------------------------------------------------------------------
class TestSparseUpdates:
    def test_lazy_rows_touch_only_gathered_rows(self):
        values = _table(rows=16, dim=3, seed=2)
        store = ShardedStore(values.copy(), 2)
        params = [p for _, p in store.named_parameters()]
        opt = Adam(params, lr=0.1, lazy_rows=True)
        before = store.logical_state()
        (store.gather(np.array([0, 3, 9])) ** 2).sum().backward()
        opt.step()
        after = store.logical_state()
        changed = np.flatnonzero(np.any(before != after, axis=1))
        np.testing.assert_array_equal(changed, [0, 3, 9])

    def test_first_step_matches_dense_adam_bitwise(self):
        values = _table(rows=16, dim=3, seed=2)
        lazy_store = ShardedStore(values.copy(), 2)
        dense_store = ShardedStore(values.copy(), 2)
        lazy = Adam([p for _, p in lazy_store.named_parameters()], lr=0.1, lazy_rows=True)
        dense = Adam([p for _, p in dense_store.named_parameters()], lr=0.1)
        ids = np.array([1, 3, 3, 14])
        for store, opt in ((lazy_store, lazy), (dense_store, dense)):
            (store.gather(ids) ** 2).sum().backward()
            opt.step()
        # From fresh optimizer state the touched rows update identically
        # (untouched rows have zero moments, so dense leaves them be too).
        np.testing.assert_array_equal(
            lazy_store.logical_state(), dense_store.logical_state()
        )

    def test_all_read_forces_dense_update(self):
        store = ShardedStore(_table(rows=6, dim=2, seed=1), 2)
        params = [p for _, p in store.named_parameters()]
        opt = Adam(params, lr=0.1, lazy_rows=True)
        (store.all() ** 2).sum().backward()
        assert all(p.touched_rows is True for p in params)
        before = store.logical_state()
        opt.step()
        assert np.all(store.logical_state() != before)

    def test_zero_grad_clears_touched_rows(self):
        store = ShardedStore(_table(rows=6, dim=2, seed=1), 2)
        store.gather(np.array([0, 5]))
        for _, p in store.named_parameters():
            p.zero_grad()
            assert p.touched_rows is None

    def test_trainer_with_sparse_updates_takes_lazy_path(self, tiny_dataset):
        """The lazy branch must actually fire during a training epoch.

        Regression: ``model.zero_grad()`` between forward and backward
        used to wipe the touched-row records the forward's gathers made,
        silently degrading every step to the dense update.
        """
        model = _gbmf(tiny_dataset, n_shards=3)
        trainer = Trainer(
            model, tiny_dataset,
            TrainConfig(
                epochs=1, batch_size=16, train_negatives=3, learning_rate=5e-3,
                seed=0, sparse_updates=True,
            ),
        )
        assert trainer.optimizer.lazy_rows
        lazy_calls = []
        original = trainer.optimizer._row_update

        def counting(*args, **kwargs):
            lazy_calls.append(1)
            return original(*args, **kwargs)

        trainer.optimizer._row_update = counting
        record = trainer.train_epoch()
        assert np.isfinite(record.losses["total"])
        assert lazy_calls, "sparse_updates never reached the lazy row update"


# ---------------------------------------------------------------------------
# Serving through the store
# ---------------------------------------------------------------------------
class TestServingWithShards:
    def test_batcher_flush_matches_dense(self, tiny_dataset):
        dense = _gbmf(tiny_dataset)
        sharded = _gbmf(tiny_dataset, n_shards=4)
        batch_dense = RequestBatcher(dense)
        batch_sharded = RequestBatcher(sharded)
        tickets = []
        for user in (0, 3, 3, 17):
            cands = [(user * 3 + j) % tiny_dataset.n_items for j in range(6)]
            tickets.append(
                (batch_dense.submit_items(user, cands),
                 batch_sharded.submit_items(user, cands))
            )
        batch_dense.flush()
        batch_sharded.flush()
        for t_dense, t_sharded in tickets:
            np.testing.assert_array_equal(t_dense.scores, t_sharded.scores)

    def test_shard_stats_exposed(self, tiny_dataset):
        sharded = _gbmf(tiny_dataset, n_shards=4)
        batcher = RequestBatcher(sharded)
        batcher.score_items(1, [0, 1, 2, 3])
        stats = batcher.shard_stats()
        assert set(stats) == {"initiator_table", "participant_table", "item_table"}
        assert stats["initiator_table"]["n_shards"] == 4
        assert stats["item_table"]["gathers"] >= 1
        # Dense models have no store-backed tables to report… unless the
        # table *is* a (single-shard) store, which GBMF's dense layout is.
        dense_stats = RequestBatcher(_gbmf(tiny_dataset)).shard_stats()
        assert all(entry["n_shards"] == 1 for entry in dense_stats.values())
