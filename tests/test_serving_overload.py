"""Overload-safe serving: admission control, shedding, degradation, multi-worker.

The contract under test (docs/serving.md "Overload behaviour"): past
saturation the engine fails *predictably* — every submit either raises a
typed error synchronously or returns a ticket that resolves with scores
or a typed :class:`repro.serving.ServingError`; no ticket is ever
stranded, and the overload counters account for every request
(``accepted == scored + shed + aborted``, ``rejected`` never ticketed).
"""

import threading
import time

import numpy as np
import pytest

from repro.baselines import GBMF
from repro.serving import (
    DeadlineExceeded,
    DegradationPolicy,
    EngineStopped,
    MultiWorkerEngine,
    OverloadError,
    RequestBatcher,
    ServingEngine,
    ServingError,
    TicketTimeout,
)

N_USERS, N_ITEMS, DIM = 40, 25, 8


def make_model(seed: int = 0) -> GBMF:
    return GBMF(N_USERS, N_ITEMS, dim=DIM, seed=seed)


#: Engine kwargs that park the flush clock: only drain()/stop() flush.
PARKED = dict(max_delay_ms=60_000.0, max_pending=10**6)


class TestErrorHierarchy:
    def test_typed_errors_subclass_serving_error(self):
        for exc in (OverloadError, DeadlineExceeded, EngineStopped, TicketTimeout):
            assert issubclass(exc, ServingError)
            assert issubclass(exc, RuntimeError)  # legacy catch-alls keep working
        assert issubclass(TicketTimeout, TimeoutError)

    def test_overload_error_carries_budget_diagnostics(self):
        exc = OverloadError("full", pending_rows=90, budget_rows=100)
        assert (exc.pending_rows, exc.budget_rows) == (90, 100)

    def test_deadline_exceeded_carries_age(self):
        exc = DeadlineExceeded("late", age_ms=12.5, budget_ms=10.0)
        assert (exc.age_ms, exc.budget_ms) == (12.5, 10.0)


class TestAdmissionControl:
    def test_depth_budget_rejects_at_submit(self):
        with ServingEngine(make_model(), max_queue_rows=10, **PARKED) as engine:
            ok = engine.submit_items(0, [0, 1, 2, 3, 4, 5])        # 6 rows
            with pytest.raises(OverloadError) as exc_info:
                engine.submit_items(1, list(range(5)))             # 6 + 5 > 10
            assert exc_info.value.budget_rows == 10
            assert exc_info.value.pending_rows == 6
            # A submit that still fits is admitted.
            ok2 = engine.submit_items(2, [0, 1, 2, 3])             # 6 + 4 <= 10
            engine.drain(timeout=10.0)
            assert ok.scores.shape == (6,)
            assert ok2.scores.shape == (4,)
            stats = engine.stats()["overload"]
            assert stats["accepted"] == 2
            assert stats["rejected"] == 1
            assert stats["max_queue_rows"] == 10

    def test_budget_frees_up_after_flush(self):
        with ServingEngine(make_model(), max_queue_rows=4, **PARKED) as engine:
            engine.submit_items(0, [0, 1, 2, 3])
            with pytest.raises(OverloadError):
                engine.submit_items(1, [0])
            engine.drain(timeout=10.0)
            # The queue drained: the budget admits again.
            ticket = engine.submit_items(1, [0, 1])
            engine.drain(timeout=10.0)
            assert ticket.scores.shape == (2,)

    def test_rejected_submit_creates_no_ticket_and_no_seq(self):
        with ServingEngine(make_model(), max_queue_rows=3, **PARKED) as engine:
            engine.submit_items(0, [0, 1, 2])
            with pytest.raises(OverloadError):
                engine.submit_items(1, [3])
            # drain() must not wait for the rejected submit.
            engine.drain(timeout=10.0)
            stats = engine.stats()
            assert stats["engine"]["submitted"] == 1
            assert stats["engine"]["served"] == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            ServingEngine(make_model(), max_queue_rows=0)
        with pytest.raises(ValueError):
            ServingEngine(make_model(), max_queue_age_ms=0.0)

    def test_sync_batcher_depth_budget(self):
        front = RequestBatcher(make_model(), max_queue_rows=5)
        front.submit_items(0, [0, 1, 2])
        with pytest.raises(OverloadError):
            front.submit_items(1, [0, 1, 2])
        assert front.rejected == 1
        front.flush()
        assert front.submit_items(1, [0, 1, 2]).scores.shape == (3,)
        front.release()


class TestLoadShedding:
    def test_aged_requests_shed_with_deadline_exceeded(self):
        model = make_model()
        with ServingEngine(model, max_queue_age_ms=40.0, **PARKED) as engine:
            stale = [engine.submit_items(u, [0, 1]) for u in range(3)]
            time.sleep(0.08)                     # age past the 40ms budget
            fresh = engine.submit_items(3, [0, 1])
            engine.drain(timeout=10.0)
            for ticket in stale:
                assert ticket.ready and ticket.failed
                assert isinstance(ticket.error, DeadlineExceeded)
                assert ticket.error.age_ms > 40.0
                with pytest.raises(DeadlineExceeded):
                    _ = ticket.scores
            # The fresh co-drained request was planned and scored.
            assert fresh.scores.shape == (2,)
            stats = engine.stats()["overload"]
            assert stats["shed"] == 3
            assert stats["accepted"] == 4

    def test_shedding_counts_participants_too(self):
        with ServingEngine(make_model(), max_queue_age_ms=30.0, **PARKED) as engine:
            t_a = engine.submit_items(0, [0, 1])
            t_b = engine.submit_participants(0, 1, [2, 3])
            time.sleep(0.07)
            engine.drain(timeout=10.0)
            assert isinstance(t_a.error, DeadlineExceeded)
            assert isinstance(t_b.error, DeadlineExceeded)
            assert engine.stats()["overload"]["shed"] == 2

    def test_no_budget_never_sheds(self):
        with ServingEngine(make_model(), **PARKED) as engine:
            ticket = engine.submit_items(0, [0, 1])
            time.sleep(0.05)
            engine.drain(timeout=10.0)
            assert ticket.scores.shape == (2,)
            assert engine.stats()["overload"]["shed"] == 0


class TestTicketTimeout:
    def test_wait_timeout_raises_ticket_timeout_and_ticket_stays_live(self):
        with ServingEngine(make_model(), **PARKED) as engine:
            ticket = engine.submit_items(0, [0, 1])
            with pytest.raises(TicketTimeout):
                ticket.wait(timeout=0.05)
            assert not ticket.ready          # unresolved, not consumed
            engine.drain(timeout=10.0)
            assert ticket.scores.shape == (2,)  # later resolution still works

    def test_ticket_timeout_is_a_timeout_error(self):
        """Legacy ``except TimeoutError`` call-sites must keep working."""
        with ServingEngine(make_model(), **PARKED) as engine:
            ticket = engine.submit_items(0, [0])
            with pytest.raises(TimeoutError):
                ticket.wait(timeout=0.05)
            engine.drain(timeout=10.0)


class TestEngineStopped:
    def test_submit_after_stop_raises_engine_stopped(self):
        engine = ServingEngine(make_model()).start()
        engine.stop()
        with pytest.raises(EngineStopped):
            engine.submit_items(0, [0])
        with pytest.raises(EngineStopped):
            engine.submit_participants(0, 1, [2])

    def test_stop_without_drain_fails_pending_tickets(self):
        engine = ServingEngine(make_model(), **PARKED)
        engine.start()
        tickets = [engine.submit_items(u, [0, 1]) for u in range(3)]
        engine.stop(drain=False)
        for ticket in tickets:
            assert ticket.ready and ticket.failed
            assert isinstance(ticket.error, EngineStopped)
            with pytest.raises(EngineStopped):
                _ = ticket.scores
        assert engine.stats()["overload"]["aborted"] == 3

    def test_stop_with_drain_still_scores(self):
        engine = ServingEngine(make_model(), **PARKED)
        engine.start()
        ticket = engine.submit_items(0, [0, 1, 2])
        engine.stop()
        assert ticket.scores.shape == (3,)
        assert engine.stats()["overload"]["aborted"] == 0

    def test_no_waiter_left_hanging_after_abort(self):
        """A thread blocked in wait() resolves the moment stop() aborts."""
        engine = ServingEngine(make_model(), **PARKED)
        engine.start()
        ticket = engine.submit_items(0, [0, 1])
        seen = {}

        def waiter():
            try:
                ticket.wait(timeout=30.0)
            except ServingError as exc:
                seen["error"] = exc

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        engine.stop(drain=False)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert isinstance(seen["error"], EngineStopped)


class TestDegradation:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(watermark_rows=0, top_k=5)
        with pytest.raises(ValueError):
            DegradationPolicy(watermark_rows=8, trigger_flushes=0, top_k=5)
        with pytest.raises(ValueError):
            DegradationPolicy(watermark_rows=8, top_k=0)
        with pytest.raises(ValueError):
            DegradationPolicy(watermark_rows=8)  # nothing to degrade to

    def test_fallback_catalog_mismatch_rejected_at_construction(self):
        policy = DegradationPolicy(
            watermark_rows=8,
            fallback_model=GBMF(N_USERS + 1, N_ITEMS, dim=DIM, seed=1),
        )
        with pytest.raises(ValueError, match="n_users"):
            ServingEngine(make_model(), degradation=policy)

    def test_fallback_must_not_be_the_primary(self):
        model = make_model()
        with pytest.raises(ValueError, match="different model"):
            ServingEngine(
                model,
                degradation=DegradationPolicy(watermark_rows=8, fallback_model=model),
            )

    def test_topk_truncation_pads_tail_with_neg_inf(self):
        policy = DegradationPolicy(watermark_rows=1, trigger_flushes=1, top_k=2)
        model = make_model()
        with ServingEngine(model, degradation=policy, **PARKED) as engine:
            ticket = engine.submit_items(0, [0, 1, 2, 3, 4])
            engine.drain(timeout=10.0)
            scores = ticket.scores
            assert ticket.degraded
            assert scores.shape == (5,)           # aligned with the request
            assert np.all(np.isfinite(scores[:2]))
            assert np.all(np.isneginf(scores[2:]))  # unscored tail ranks last
            assert engine.stats()["overload"]["degraded"] == 1
        # The scored head matches full-fidelity scoring of those candidates.
        reference = RequestBatcher(make_model()).score_items(0, [0, 1])
        np.testing.assert_array_equal(scores[:2], reference)

    def test_trigger_streak_and_recovery(self):
        policy = DegradationPolicy(watermark_rows=4, trigger_flushes=2, top_k=1)
        with ServingEngine(make_model(), degradation=policy, **PARKED) as engine:
            # Flush 1: deep (streak 1) — not degraded yet.
            first = engine.submit_items(0, [0, 1, 2, 3])
            engine.drain(timeout=10.0)
            assert not first.degraded
            # Flush 2: deep again (streak 2) — degradation engages.
            second = engine.submit_items(1, [0, 1, 2, 3])
            engine.drain(timeout=10.0)
            assert second.degraded
            assert engine.stats()["overload"]["degraded_active"]
            # Flush 3: shallow — instant recovery.
            third = engine.submit_items(2, [0])
            engine.drain(timeout=10.0)
            assert not third.degraded
            stats = engine.stats()["overload"]
            assert not stats["degraded_active"]
            assert stats["pressure_streak"] == 0
            assert stats["degraded"] == 1

    def test_fallback_model_routing(self):
        fallback = make_model(seed=9)
        policy = DegradationPolicy(
            watermark_rows=1, trigger_flushes=1, fallback_model=fallback
        )
        with ServingEngine(make_model(), degradation=policy, **PARKED) as engine:
            ticket = engine.submit_items(3, [0, 1, 2])
            engine.drain(timeout=10.0)
            scores = ticket.scores
            assert ticket.degraded
            stats = engine.stats()
            assert stats["overload"]["degraded"] == 1
            assert stats["fallback"]["flushes"] == 1
        # Degraded scores are the fallback's, bit-identical.
        reference = RequestBatcher(make_model(seed=9)).score_items(3, [0, 1, 2])
        np.testing.assert_array_equal(scores, reference)

    def test_undegraded_flushes_stay_on_primary(self):
        fallback = make_model(seed=9)
        policy = DegradationPolicy(
            watermark_rows=10**6, fallback_model=fallback
        )
        with ServingEngine(make_model(), degradation=policy, **PARKED) as engine:
            ticket = engine.submit_items(3, [0, 1, 2])
            engine.drain(timeout=10.0)
            scores = ticket.scores
            assert engine.stats()["fallback"]["flushes"] == 0
        reference = RequestBatcher(make_model()).score_items(3, [0, 1, 2])
        np.testing.assert_array_equal(scores, reference)


class TestMultiWorkerEngine:
    def test_construction_validation(self):
        model = make_model()
        with pytest.raises(ValueError, match="at least one"):
            MultiWorkerEngine([])
        with pytest.raises(ValueError, match="distinct objects"):
            MultiWorkerEngine([model, model])
        with pytest.raises(ValueError, match="catalog"):
            MultiWorkerEngine([model, GBMF(N_USERS + 1, N_ITEMS, dim=DIM, seed=0)])
        with pytest.raises(ValueError, match="fallback"):
            MultiWorkerEngine(
                [make_model(), make_model()],
                degradation=DegradationPolicy(
                    watermark_rows=8, fallback_model=make_model(seed=1)
                ),
            )
        shared_fallback = make_model(seed=1)
        with pytest.raises(ValueError, match="fallback"):
            MultiWorkerEngine(
                [make_model(), make_model()],
                degradation=[
                    DegradationPolicy(watermark_rows=8, fallback_model=shared_fallback),
                    DegradationPolicy(watermark_rows=8, fallback_model=shared_fallback),
                ],
            )
        with pytest.raises(ValueError, match="policies"):
            MultiWorkerEngine(
                [make_model(), make_model()],
                degradation=[DegradationPolicy(watermark_rows=8, top_k=2)],
            )

    def test_user_partitioning_is_stable(self):
        replicas = [make_model() for _ in range(3)]
        engine = MultiWorkerEngine(replicas)
        assert engine.n_workers == 3
        for user in range(12):
            assert engine.worker_of(user) == user % 3

    def test_requests_land_on_their_users_worker(self):
        replicas = [make_model() for _ in range(2)]
        with MultiWorkerEngine(replicas, **PARKED) as engine:
            engine.submit_items(0, [0, 1])        # worker 0
            engine.submit_items(1, [0, 1, 2])     # worker 1
            engine.submit_participants(3, 0, [1])  # initiator 3 -> worker 1
            engine.drain(timeout=10.0)
            stats = engine.stats()
        per_worker = [w["overload"]["accepted"] for w in stats["workers"]]
        assert per_worker == [1, 2]
        assert stats["aggregate"]["accepted"] == 3

    def test_four_workers_bit_identical_to_single_engine(self):
        """Acceptance gate: 4-worker float64 scores == single-engine scores."""
        rng = np.random.default_rng(5)
        requests_a = [
            (int(rng.integers(N_USERS)), rng.integers(N_ITEMS, size=7).tolist())
            for _ in range(40)
        ]
        requests_b = [
            (
                int(rng.integers(N_USERS)),
                int(rng.integers(N_ITEMS)),
                rng.integers(N_USERS, size=5).tolist(),
            )
            for _ in range(20)
        ]
        multi = MultiWorkerEngine([make_model() for _ in range(4)], max_delay_ms=1.0)
        with multi:
            multi_a = [multi.submit_items(u, c) for u, c in requests_a]
            multi_b = [multi.submit_participants(u, i, c) for u, i, c in requests_b]
            multi.drain(timeout=30.0)
        single = ServingEngine(make_model(), **PARKED)
        with single:
            single_a = [single.submit_items(u, c) for u, c in requests_a]
            single_b = [single.submit_participants(u, i, c) for u, i, c in requests_b]
            single.drain(timeout=30.0)
        for m, s in zip(multi_a, single_a):
            np.testing.assert_array_equal(m.scores, s.scores)
        for m, s in zip(multi_b, single_b):
            np.testing.assert_array_equal(m.scores, s.scores)

    def test_mgbr_bit_identical_per_partition(self, tiny_dataset, small_config):
        """MGBR parity holds per user partition (same batch composition).

        Unlike GBMF's per-pair reductions, MGBR's planned stack runs
        BLAS matmuls whose blocking varies with batch shape, so bitwise
        equality requires comparing against a single engine that
        flushes each worker's partition as its own batch.
        """
        from repro.core import MGBR

        def mk():
            return MGBR(
                tiny_dataset.train,
                tiny_dataset.n_users,
                tiny_dataset.n_items,
                config=small_config,
            )

        rng = np.random.default_rng(11)
        reqs = [
            (
                int(rng.integers(tiny_dataset.n_users)),
                rng.integers(tiny_dataset.n_items, size=5).tolist(),
            )
            for _ in range(12)
        ]
        multi = MultiWorkerEngine([mk() for _ in range(3)], **PARKED)
        with multi:  # parked clock: each partition co-batches in one flush
            tickets = [multi.submit_items(u, c) for u, c in reqs]
            multi.drain(timeout=30.0)
        reference = {}
        with ServingEngine(mk(), **PARKED) as single:
            for worker in range(3):
                batch = [
                    (idx, single.submit_items(u, c))
                    for idx, (u, c) in enumerate(reqs)
                    if u % 3 == worker
                ]
                single.drain(timeout=30.0)
                for idx, ticket in batch:
                    reference[idx] = ticket.scores
        for idx, ticket in enumerate(tickets):
            np.testing.assert_array_equal(ticket.scores, reference[idx])

    def test_overload_error_propagates_from_worker(self):
        replicas = [make_model() for _ in range(2)]
        with MultiWorkerEngine(replicas, max_queue_rows=4, **PARKED) as engine:
            engine.submit_items(0, [0, 1, 2, 3])      # fills worker 0's budget
            with pytest.raises(OverloadError):
                engine.submit_items(2, [0])           # same worker: rejected
            # Worker 1 has its own budget and still admits.
            ticket = engine.submit_items(1, [0, 1])
            engine.drain(timeout=10.0)
            assert ticket.scores.shape == (2,)
            assert engine.stats()["aggregate"]["rejected"] == 1

    def test_stop_without_drain_aborts_all_workers(self):
        engine = MultiWorkerEngine([make_model() for _ in range(2)], **PARKED)
        engine.start()
        tickets = [engine.submit_items(u, [0, 1]) for u in range(4)]
        engine.stop(drain=False)
        assert all(isinstance(t.error, EngineStopped) for t in tickets)
        assert engine.stats()["aggregate"]["aborted"] == 4
        with pytest.raises(EngineStopped):
            engine.submit_items(0, [0])

    def test_refresh_swaps_weights_on_all_workers_without_dropping(self):
        replicas = [make_model() for _ in range(2)]
        fresh = make_model(seed=7)
        with MultiWorkerEngine(replicas, max_delay_ms=2.0) as engine:
            before = [
                engine.score_items(u, [0, 1, 2], timeout=10.0) for u in (0, 1)
            ]
            state = fresh.state_dict()
            for model in engine.models:
                model.load_state_dict(state)
            engine.refresh()
            after = [
                engine.score_items(u, [0, 1, 2], timeout=10.0) for u in (0, 1)
            ]
            stats = engine.stats()
        for b, a in zip(before, after):
            assert not np.allclose(b, a)
        reference = RequestBatcher(make_model(seed=7))
        for u, a in zip((0, 1), after):
            np.testing.assert_allclose(a, reference.score_items(u, [0, 1, 2]))
        # No ticket was rejected, shed or aborted across the swap.
        agg = stats["aggregate"]
        assert agg["accepted"] == 4
        assert agg["rejected"] == agg["shed"] == agg["aborted"] == 0

    def test_stats_serializable_and_conserving(self):
        import json

        with MultiWorkerEngine([make_model() for _ in range(2)], **PARKED) as engine:
            for u in range(6):
                engine.submit_items(u, [0, 1, 2])
            engine.drain(timeout=10.0)
            stats = engine.stats()
        json.dumps(stats)
        assert stats["n_workers"] == 2
        assert stats["aggregate"]["accepted"] == 6
        assert stats["aggregate"]["served"] == 6


class TestOverloadConservation:
    def test_every_submit_resolves_or_rejects_under_pressure(self):
        """Concurrent submitters vs tight budgets: nothing is stranded."""
        model = make_model()
        engine = ServingEngine(
            model,
            max_delay_ms=1.0,
            max_pending=64,
            max_queue_rows=48,
            max_queue_age_ms=20.0,
        )
        tickets, rejected = [], [0]
        lock = threading.Lock()

        def submitter(seed):
            rng = np.random.default_rng(seed)
            for _ in range(40):
                user = int(rng.integers(N_USERS))
                cands = rng.integers(N_ITEMS, size=6).tolist()
                try:
                    ticket = engine.submit_items(user, cands)
                except OverloadError:
                    with lock:
                        rejected[0] += 1
                else:
                    with lock:
                        tickets.append(ticket)

        with engine:
            threads = [threading.Thread(target=submitter, args=(s,)) for s in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            engine.drain(timeout=30.0)
            stats = engine.stats()["overload"]

        assert all(t.ready for t in tickets), "stranded tickets"
        scored = sum(1 for t in tickets if not t.failed)
        shed = sum(1 for t in tickets if isinstance(t.error, DeadlineExceeded))
        assert scored + shed == len(tickets)  # only typed outcomes
        assert stats["accepted"] == len(tickets) == 160 - rejected[0]
        assert stats["rejected"] == rejected[0]
        assert stats["shed"] == shed
        assert stats["aborted"] == 0
