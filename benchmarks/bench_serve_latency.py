"""Serving-latency benchmark: open-loop Poisson traffic vs ServingEngine.

Measures what the async serving engine trades: **latency** (the
deadline-triggered flush clock bounds how long a request waits for
co-batching) against **throughput** (bigger planned calls amortise
model dispatch).  Traffic is open-loop: request arrival times are drawn
from a Poisson process at a fixed offered rate and a submitter thread
sticks to that schedule regardless of how the engine keeps up — the
honest way to measure a queueing system (closed loops hide overload by
slowing the clients).

Cells sweep ``offered rate × flush deadline × store layout``:

* ``dense``   — GBMF over single-table stores;
* ``sharded`` — the same tables range-partitioned 4 ways (every flush
  regroups ids per shard);
* ``lru``     — the sharded layout fronted by a
  :class:`repro.store.LRUCachedStore` hot-row cache; ids are
  Zipf-skewed, so the cache absorbs the head of the distribution.

Per cell: p50/p95/p99 request latency (submit → ticket resolution),
achieved submit rate, served QPS, the engine's flush-cause breakdown
and cache hit rates.  Steady-state cells (the submitter held the
offered rate and the engine kept up) must respect the latency model

    ``p95  <=  max_delay_ms + one flush duration (+ scheduler slack)``

— a request waits at most one full deadline, then one flush.

Writes ``BENCH_serve_latency.json`` at the repository root.  Run
directly (``PYTHONPATH=src python benchmarks/bench_serve_latency.py``);
``--smoke`` runs a seconds-scale configuration and skips the artifact.
Environment knobs: ``REPRO_BENCH_SERVE_USERS / ITEMS / DIM /
CANDIDATES / SLACK_MS``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.baselines import GBMF
from repro.serving import ServingEngine
from repro.store import cache_hot_rows

N_USERS = int(os.environ.get("REPRO_BENCH_SERVE_USERS", "3000"))
N_ITEMS = int(os.environ.get("REPRO_BENCH_SERVE_ITEMS", "1000"))
DIM = int(os.environ.get("REPRO_BENCH_SERVE_DIM", "32"))
CANDIDATES = int(os.environ.get("REPRO_BENCH_SERVE_CANDIDATES", "20"))
#: Scheduler/GIL slack added on top of the latency model before the
#: p95 assertion — generous for shared CI runners, still far below the
#: deadlines it guards.
SLACK_MS = float(os.environ.get("REPRO_BENCH_SERVE_SLACK_MS", "25.0"))

RATES = (200.0, 800.0, 2000.0)       # offered requests/sec
DEADLINES_MS = (2.0, 10.0)           # engine max_delay_ms
STORES = ("dense", "sharded", "lru")
N_SHARDS = 4
LRU_CAPACITY = 256
ZIPF_A = 1.2
SEED = 23

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve_latency.json"


def _zipf_ids(rng: np.random.Generator, n: int, bound: int) -> np.ndarray:
    """Zipf-skewed ids in ``[0, bound)`` — serving's hot-head traffic."""
    raw = rng.zipf(ZIPF_A, size=n)
    return (raw - 1) % bound


def build_model(store: str) -> GBMF:
    n_shards = 0 if store == "dense" else N_SHARDS
    model = GBMF(N_USERS, N_ITEMS, dim=DIM, seed=SEED, n_shards=n_shards)
    if store == "lru":
        cache_hot_rows(model, LRU_CAPACITY)
    model.eval()
    model.refresh_cache()
    return model


def make_requests(rng: np.random.Generator, n: int):
    users = _zipf_ids(rng, n, N_USERS)
    candidates = _zipf_ids(rng, n * CANDIDATES, N_ITEMS).reshape(n, CANDIDATES)
    return users, candidates


def run_cell(model: GBMF, rate: float, deadline_ms: float, n_requests: int,
             rng: np.random.Generator) -> dict:
    users, candidates = make_requests(rng, n_requests)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n_requests))
    engine = ServingEngine(model, max_delay_ms=deadline_ms, max_pending=8192)
    tickets = [None] * n_requests
    submit_at = np.empty(n_requests)

    def submitter() -> None:
        t0 = time.perf_counter()
        for k in range(n_requests):
            lag = t0 + arrivals[k] - time.perf_counter()
            if lag > 0:
                time.sleep(lag)
            submit_at[k] = time.perf_counter()
            tickets[k] = engine.submit_items(int(users[k]), candidates[k])

    with engine:
        thread = threading.Thread(target=submitter)
        started = time.perf_counter()
        thread.start()
        thread.join()
        engine.drain(timeout=60.0)
        stats = engine.stats()
    assert all(t is not None and t.ready for t in tickets), "unresolved tickets"
    assert stats["batcher"]["failed_flushes"] == 0, "flush failures during bench"

    resolved_at = np.array([t.resolved_at for t in tickets])
    latency_ms = (resolved_at - submit_at) * 1000.0
    span = submit_at[-1] - submit_at[0]
    achieved_rate = (n_requests - 1) / span if span > 0 else float("inf")
    served_span = resolved_at.max() - started
    p50, p95, p99 = np.percentile(latency_ms, (50, 95, 99))
    engine_stats = stats["engine"]
    batcher = stats["batcher"]
    steady = achieved_rate >= 0.85 * rate
    cell = {
        "offered_rate": rate,
        "achieved_rate": round(float(achieved_rate), 1),
        "deadline_ms": deadline_ms,
        "n_requests": n_requests,
        "steady_state": bool(steady),
        "served_qps": round(n_requests / served_span, 1) if served_span > 0 else None,
        "latency_ms": {
            "p50": round(float(p50), 3),
            "p95": round(float(p95), 3),
            "p99": round(float(p99), 3),
            "max": round(float(latency_ms.max()), 3),
        },
        "flushes": engine_stats["flushes"],
        "flush_causes": engine_stats["flush_causes"],
        "avg_flush_ms": round(engine_stats["avg_flush_seconds"] * 1000.0, 3),
        "max_flush_ms": round(engine_stats["max_flush_seconds"] * 1000.0, 3),
        "rows_per_flush": round(batcher["flat_rows"] / max(engine_stats["flushes"], 1), 1),
        "dedup_ratio": round(batcher["flat_rows"] / max(batcher["unique_pairs"], 1), 3),
        "cache_hit_rate": round(stats["cache"]["hit_rate"], 4)
        if stats["cache"]["stores"]
        else None,
        "p95_bound_ms": round(
            deadline_ms + engine_stats["max_flush_seconds"] * 1000.0 + SLACK_MS, 3
        ),
    }
    return cell


def run_benchmark(rates=RATES, deadlines=DEADLINES_MS, stores=STORES,
                  n_requests: int = 0) -> dict:
    report = {
        "config": {
            "n_users": N_USERS, "n_items": N_ITEMS, "dim": DIM,
            "candidates_per_request": CANDIDATES, "n_shards": N_SHARDS,
            "lru_capacity": LRU_CAPACITY, "zipf_a": ZIPF_A,
            "slack_ms": SLACK_MS,
        },
        "cells": [],
    }
    for store in stores:
        model = build_model(store)
        for rate in rates:
            for deadline in deadlines:
                rng = np.random.default_rng(SEED + 1)
                n = n_requests or int(min(max(rate * 1.5, 300), 3000))
                cell = run_cell(model, rate, deadline, n, rng)
                cell["store"] = store
                report["cells"].append(cell)
    return report


def check_report(report: dict) -> None:
    """Acceptance gates (also exercised by the CI smoke run)."""
    assert report["cells"], "no cells measured"
    steady = [c for c in report["cells"] if c["steady_state"]]
    assert steady, "no steady-state cells — offered rates too high for this host"
    for cell in steady:
        assert cell["latency_ms"]["p95"] <= cell["p95_bound_ms"], (
            f"{cell['store']} @ {cell['offered_rate']}/s, "
            f"deadline {cell['deadline_ms']}ms: p95 {cell['latency_ms']['p95']}ms "
            f"exceeds max_delay + flush + slack = {cell['p95_bound_ms']}ms"
        )
    lru = [c for c in report["cells"] if c["store"] == "lru"]
    for cell in lru:
        assert cell["cache_hit_rate"] is not None
        # Zipf-skewed ids must actually hit the hot-row cache.
        assert cell["cache_hit_rate"] > 0.2, (
            f"LRU hit rate collapsed to {cell['cache_hit_rate']}"
        )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale run (one rate/deadline cell per store); "
        "skips the JSON artifact",
    )
    args = parser.parse_args()
    if args.smoke:
        if "REPRO_BENCH_SERVE_SLACK_MS" not in os.environ:
            # 250 requests span ~0.5s: one scheduler stall on a shared
            # CI runner moves p95, so the smoke gate gets wider slack
            # (still far below unbounded-queueing latencies).
            SLACK_MS = 100.0
        result = run_benchmark(
            rates=(500.0,), deadlines=(5.0,), n_requests=250
        )
    else:
        result = run_benchmark()
    check_report(result)
    if not args.smoke:
        OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
