"""Embedding-store interface: partitioners, shard maps, gather contract.

The ROADMAP's sharding item separates *what rows a scoring request
touches* (a :class:`repro.plan.ScoringPlan`'s unique-entity arrays)
from *where those rows live*.  This module defines the "where":

* an :class:`EmbeddingStore` owns the rows of one logical
  ``(num_rows, dim)`` embedding table and answers
  ``gather(unique_ids) -> rows`` with a differentiable scatter-add
  backward, so every consumer — the planned scoring paths, the flat
  trainer, serving — reads entity rows without knowing the layout;
* a :class:`Partitioner` maps logical row ids onto shards (contiguous
  ``range`` blocks or modulo ``hash`` striping) and compiles an id
  array into a :class:`ShardMap` — the per-shard gather plan that
  touches each shard exactly once per call;
* :func:`iter_stores` walks a module tree for store-backed embeddings
  (serving observability, per-shard checkpointing).

Stores are deliberately *not* :class:`repro.nn.module.Module`
subclasses: the owning :class:`repro.nn.layers.Embedding` registers the
store's :class:`repro.nn.module.Parameter` leaves under its own names,
so optimizers and parameter counting see shards directly while the
embedding's canonical checkpoint entry stays the logical ``weight``
table regardless of layout (see ``Embedding._state_items``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, is_grad_enabled

__all__ = ["ShardMap", "Partitioner", "EmbeddingStore", "iter_stores"]


@dataclass
class ShardMap:
    """A compiled per-shard gather plan for one id array.

    Attributes
    ----------
    n_rows:
        Length of the original id array.
    per_shard_local:
        One *shard-local* row-index array per shard — the rows each
        shard worker serves for this gather (empty arrays for untouched
        shards).  Concatenating the per-shard results yields the rows in
        shard-grouped ``order``.
    order:
        ``(n_rows,)`` original positions grouped by owning shard (the
        stable grouping permutation).
    inverse:
        ``(n_rows,)`` indices such that ``grouped[inverse]`` restores
        the caller's request order.
    identity:
        Whether ``order`` is already the identity — true for sorted ids
        under range partitioning (every planned gather: plan entity ids
        come out of ``np.unique``), letting the store skip the
        reassembly permutation entirely.
    """

    n_rows: int
    per_shard_local: List[np.ndarray]
    order: np.ndarray
    inverse: np.ndarray
    identity: bool

    @property
    def shards_touched(self) -> int:
        """How many shards this gather actually visits."""
        return sum(1 for local in self.per_shard_local if len(local))

    @property
    def max_shard_rows(self) -> int:
        """Largest per-shard gather — the transient resident-row cost."""
        return max((len(local) for local in self.per_shard_local), default=0)


@dataclass(frozen=True)
class Partitioner:
    """Maps logical row ids of a ``(num_rows, dim)`` table onto shards.

    ``kind="range"`` assigns contiguous blocks (``np.array_split``
    boundaries: the first ``num_rows % n_shards`` shards hold one extra
    row, so every shard holds at most ``ceil(num_rows / n_shards)``
    rows).  ``kind="hash"`` stripes ``id % n_shards`` — the classic
    modulo hash for skew-free load when id locality is adversarial.
    """

    num_rows: int
    n_shards: int
    kind: str = "range"
    _starts: Tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            raise ValueError(f"num_rows must be >= 0, got {self.num_rows}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.kind not in ("range", "hash"):
            raise ValueError(f"partition kind must be range|hash, got {self.kind!r}")
        base, extra = divmod(self.num_rows, self.n_shards)
        sizes = [base + (1 if k < extra else 0) for k in range(self.n_shards)]
        starts = np.concatenate([[0], np.cumsum(sizes)])
        object.__setattr__(self, "_starts", tuple(int(s) for s in starts))

    @property
    def key(self) -> Tuple:
        """Hashable identity for shard-map caching (e.g. on a plan)."""
        return (self.kind, self.n_shards, self.num_rows)

    def shard_size(self, shard: int) -> int:
        """Number of rows shard ``shard`` owns."""
        if self.kind == "range":
            return self._starts[shard + 1] - self._starts[shard]
        if shard >= self.num_rows:
            return 0
        return (self.num_rows - shard - 1) // self.n_shards + 1

    def owned_ids(self, shard: int) -> np.ndarray:
        """The logical row ids shard ``shard`` owns, ascending."""
        if self.kind == "range":
            return np.arange(self._starts[shard], self._starts[shard + 1], dtype=np.int64)
        return np.arange(shard, self.num_rows, self.n_shards, dtype=np.int64)

    def owner(self, ids: np.ndarray) -> np.ndarray:
        """Owning shard index per id."""
        ids = np.asarray(ids, dtype=np.int64)
        if self.kind == "range":
            return np.searchsorted(np.asarray(self._starts[1:]), ids, side="right")
        return ids % self.n_shards

    def to_local(self, ids: np.ndarray, owners: Optional[np.ndarray] = None) -> np.ndarray:
        """Shard-local row index per id (given its owner)."""
        ids = np.asarray(ids, dtype=np.int64)
        if self.kind == "range":
            if owners is None:
                owners = self.owner(ids)
            starts = np.asarray(self._starts[:-1])
            return ids - starts[owners]
        return ids // self.n_shards

    def build_map(self, ids) -> ShardMap:
        """Compile an id array into its per-shard gather plan.

        Each shard appears exactly once, so one planned call touches
        every shard at most once regardless of how ids interleave.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError(f"shard maps need 1-D id arrays, got shape {ids.shape}")
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_rows):
            raise ValueError(
                f"ids must lie in [0, {self.num_rows}), got range "
                f"[{int(ids.min())}, {int(ids.max())}]"
            )
        owners = self.owner(ids)
        order = np.argsort(owners, kind="stable")
        local = self.to_local(ids, owners)
        counts = np.bincount(owners, minlength=self.n_shards)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        per_shard_local = [
            local[order[bounds[k] : bounds[k + 1]]] for k in range(self.n_shards)
        ]
        inverse = np.empty(len(ids), dtype=np.int64)
        inverse[order] = np.arange(len(ids))
        identity = bool(np.array_equal(order, np.arange(len(ids))))
        return ShardMap(
            n_rows=len(ids),
            per_shard_local=per_shard_local,
            order=order,
            inverse=inverse,
            identity=identity,
        )


class EmbeddingStore:
    """Storage strategy behind :class:`repro.nn.layers.Embedding`.

    The contract every consumer relies on:

    * :meth:`gather` returns requested rows *bit-identical* to indexing
      the logical dense table, with a backward that scatter-adds into
      the owning shard parameters in the same per-row accumulation
      order as the dense adjoint — so planned/flat scores and gradients
      cannot depend on the layout;
    * :meth:`all` materialises the logical table as one differentiable
      tensor (full-graph GCN encoders and MF baselines need it);
    * :meth:`logical_state` / :meth:`load_logical` round-trip the
      logical table for canonical (layout-independent) checkpoints;
    * :meth:`assign_rows` writes rows by logical id into whichever
      shard owns them — the streaming restore path for per-shard
      checkpoint files.

    ``stats`` counts gathers for serving observability and the
    shard-gather benchmark; stores also record *touched rows* on their
    parameters (``Parameter.touched_rows``) during grad-enabled
    gathers, which the lazy-row optimizer mode consumes.

    Thread-safety: the bookkeeping side effects of a gather — the
    ``stats`` counters and the ``touched_rows`` records — are guarded
    by a per-store lock, so a stats reader (``stats_snapshot``, the
    serving engine's unified ``stats()``) can run concurrently with the
    engine's scorer thread without torn counters, and two grad-enabled
    gathers cannot drop each other's touched-row unions.  The gathered
    *values* need no lock (reads of parameter buffers); concurrent
    **writers** (optimizer steps, ``assign_rows``) are still the
    caller's responsibility to serialize against readers.
    """

    num_rows: int
    dim: int

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.stats = {
            "gathers": 0,
            "rows_gathered": 0,
            "max_gather_rows": 0,
            "shard_touches": 0,
            "max_shard_gather_rows": 0,
        }

    # ------------------------------------------------------------------
    # To be provided by concrete stores
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def named_parameters(self) -> List[Tuple[str, Parameter]]:
        """``(name, parameter)`` leaves for the owning module to register."""
        raise NotImplementedError  # pragma: no cover - abstract

    def gather(self, ids, plan=None, role: Optional[str] = None) -> Tensor:
        """Rows for logical ``ids`` → differentiable ``(len(ids), dim)``."""
        raise NotImplementedError  # pragma: no cover - abstract

    def all(self) -> Tensor:
        """The logical table as one differentiable tensor."""
        raise NotImplementedError  # pragma: no cover - abstract

    def logical_state(self) -> np.ndarray:
        """Copy of the logical ``(num_rows, dim)`` table."""
        raise NotImplementedError  # pragma: no cover - abstract

    def load_logical(self, values: np.ndarray, dtype=None) -> None:
        """Load a logical table (re-partitioning as needed).

        ``dtype=None`` assigns into the existing buffers; an explicit
        dtype rebinds every shard buffer to that precision (the float32
        serving path) and clears gradients.
        """
        raise NotImplementedError  # pragma: no cover - abstract

    def assign_rows(self, ids, values) -> None:
        """Write ``values`` into the logical rows ``ids`` (any layout)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def shard_rows(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(owned_ids, rows)`` of one shard — the per-shard checkpoint unit."""
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _check_table(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.shape != (self.num_rows, self.dim):
            raise ValueError(
                f"expected a ({self.num_rows}, {self.dim}) table, got {values.shape}"
            )
        return values

    def _record_gather(self, n_rows: int, shards_touched: int, max_shard_rows: int) -> None:
        with self._lock:
            self.stats["gathers"] += 1
            self.stats["rows_gathered"] += int(n_rows)
            self.stats["max_gather_rows"] = max(self.stats["max_gather_rows"], int(n_rows))
            self.stats["shard_touches"] += int(shards_touched)
            self.stats["max_shard_gather_rows"] = max(
                self.stats["max_shard_gather_rows"], int(max_shard_rows)
            )

    def stats_snapshot(self) -> dict:
        """Consistent copy of the gather counters (safe from any thread).

        Includes ``resident_bytes`` whenever the store can account for
        its buffers (:meth:`resident_nbytes`), so benchmarks and the
        serving engine read a counter instead of ``sys.getsizeof``
        guesswork.
        """
        with self._lock:
            out = dict(self.stats)
        nbytes = self.resident_nbytes()
        if nbytes is not None:
            out["resident_bytes"] = int(nbytes)
        return out

    def resident_nbytes(self) -> Optional[int]:
        """Bytes permanently held by this store tier (rows + side arrays
        + arenas), or ``None`` when the layout cannot account for them."""
        return None

    def _record_touch(self, param: Parameter, local_ids: np.ndarray) -> None:
        """Note rows that will receive gradient (lazy-row optimizer input)."""
        if not (is_grad_enabled() and param.requires_grad):
            return
        with self._lock:
            prev = getattr(param, "touched_rows", None)
            if prev is True:
                return
            rows = np.unique(local_ids)
            param.touched_rows = rows if prev is None else np.union1d(prev, rows)

    def _record_touch_all(self, param: Parameter) -> None:
        if is_grad_enabled() and param.requires_grad:
            with self._lock:
                param.touched_rows = True

    @staticmethod
    def _assign_param(param: Parameter, values: np.ndarray, dtype=None) -> None:
        """Assign-or-rebind one parameter buffer (checkpoint-load semantics)."""
        if dtype is None:
            param.data[...] = values
        else:
            # np.array (not asarray): always copy, so the rebound buffer
            # never aliases the caller's arrays.
            param.data = np.array(values, dtype=dtype)
            param.grad = None
        param.bump_version()

    def rebind_dtype(self, dtype) -> None:
        """Rebind every owned buffer to ``dtype`` (float32 serving path)."""
        for _, param in self.named_parameters():
            self._assign_param(param, param.data, dtype)

    def resident_rows(self) -> List[int]:
        """Rows permanently held per shard (the memory-model accounting)."""
        return [self.shard_size_of(k) for k in range(self.n_shards)]

    def shard_size_of(self, shard: int) -> int:
        """Rows shard ``shard`` owns (1 shard = the whole table for dense)."""
        raise NotImplementedError  # pragma: no cover - abstract


def iter_stores(module) -> Iterator[Tuple[str, EmbeddingStore]]:
    """Yield ``(module_path, store)`` for store-backed embeddings in a tree.

    Duck-typed on the ``store`` attribute so this module never imports
    the layer classes (the layers import *us*).
    """
    for name, mod in module.named_modules():
        store = getattr(mod, "store", None)
        if isinstance(store, EmbeddingStore):
            yield (name or "<root>"), store
