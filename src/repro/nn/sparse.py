"""Sparse-matrix support for graph convolutions.

The normalized adjacency matrices ``Â`` in Eq. 1-3 are constant (the
graphs are fixed before training), so only the dense right-hand operand
of ``Â @ X`` needs gradient flow.  :func:`spmm` wraps scipy CSR matrices
into the autograd graph with exactly that one-sided adjoint:
``∂L/∂X = Âᵀ (∂L/∂Y)``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.nn.tensor import Tensor

__all__ = ["spmm", "to_csr"]


def to_csr(matrix) -> sp.csr_matrix:
    """Coerce dense/sparse input into canonical CSR float64."""
    if sp.issparse(matrix):
        out = matrix.tocsr()
    else:
        out = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
    if out.dtype != np.float64:
        out = out.astype(np.float64)
    return out


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Sparse-dense product ``matrix @ dense`` with gradient to ``dense``.

    Parameters
    ----------
    matrix:
        A fixed (non-trainable) ``(n, m)`` scipy sparse matrix — in this
        library always a normalized adjacency with self-loops.
    dense:
        An ``(m, d)`` tensor of node features.

    Returns
    -------
    Tensor
        ``(n, d)`` propagated features; backward applies ``matrixᵀ``.
    """
    csr = to_csr(matrix)
    if dense.ndim != 2:
        raise ValueError(f"spmm expects a 2-D dense operand, got shape {dense.shape}")
    if csr.shape[1] != dense.shape[0]:
        raise ValueError(
            f"dimension mismatch: sparse {csr.shape} @ dense {dense.shape}"
        )
    value = csr @ dense.data
    csr_t = csr.T.tocsr()

    def backward(g: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate(csr_t @ g)

    return Tensor._make(np.asarray(value), (dense,), backward)
