"""Serving core: tickets, the pending-request queue, and flush execution.

This module is the *pure* half of the serving layer — it knows nothing
about clocks or threads.  Two shells drive it:

* :class:`repro.serving.frontend.RequestBatcher` — the synchronous
  front-end: the caller owns the flush clock (explicit ``flush()``,
  lazy flush on ``scores``, size-triggered auto-flush);
* :class:`repro.serving.engine.ServingEngine` — the asynchronous
  front-end: a dedicated worker thread owns the flush clock
  (deadline / size budget / drain) and is the **only** thread that ever
  calls the model.

Split of responsibilities:

* :class:`PendingScores` — one ticket per submitted request; resolves
  with a score vector (or the flush's exception) via a
  :class:`threading.Event`, so any thread can block in
  :meth:`PendingScores.wait`.
* :class:`RequestQueue` — plain pending-request state (request tuples,
  per-task pending row counts, oldest-enqueue timestamp).  No locks: the
  owning shell serializes access.
* :class:`ScoringCore` — validation and flush execution: compiles each
  task's drained requests into one :class:`repro.plan.ScoringPlan`,
  runs the planned model call under ``no_grad``/``dtype_scope``, and
  scatters scores back onto the tickets.  A model error inside one
  task's call **fails that task's tickets with the captured exception**
  (instead of orphaning them unresolved) and still executes the other
  task before re-raising — one poisoned batch never strands its
  co-batched neighbours in limbo.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.executor import VALID_EXECUTORS
from repro.nn.tensor import dtype_scope, no_grad
from repro.plan import ScoringPlan
from repro.serving.errors import OverloadError, TicketTimeout
from repro.store import iter_stores

__all__ = ["PendingScores", "RequestQueue", "ScoringCore", "split_expired"]


class PendingScores:
    """A ticket for one submitted request; resolves at a flush.

    The ticket resolves exactly once — either with the request's score
    vector or, when its flush's model call raised, with that exception
    (re-raised by :attr:`scores` / :meth:`wait`, so the submitter sees
    the real failure instead of a generic "never resolved" error).
    """

    __slots__ = ("_owner", "_scores", "_error", "_event", "_pad_to",
                 "resolved_at", "degraded")

    def __init__(self, owner) -> None:
        self._owner = owner
        self._scores: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._event = threading.Event()
        self._pad_to: Optional[int] = None
        #: ``time.perf_counter()`` at resolution (latency accounting).
        self.resolved_at: Optional[float] = None
        #: Whether this request was served degraded (candidate list
        #: truncated to the policy's top-K and/or scored by the fallback
        #: model) — see :class:`repro.serving.degrade.DegradationPolicy`.
        self.degraded: bool = False

    @property
    def ready(self) -> bool:
        """Whether the ticket has resolved (with scores or a failure)."""
        return self._event.is_set()

    @property
    def failed(self) -> bool:
        """Whether the ticket's flush failed (``scores`` will raise)."""
        return self._error is not None

    @property
    def error(self) -> Optional[BaseException]:
        """The exception this ticket resolved with, if any.

        ``None`` while pending or after a successful resolution.  Lets
        overload accounting distinguish shed (``DeadlineExceeded``) from
        genuinely failed tickets without re-raising.
        """
        return self._error

    def wait(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until resolution; return the scores.

        On a synchronous front-end this triggers a flush; on the async
        engine it blocks on the ticket's event until the worker's clock
        fires (``timeout`` in seconds bounds the wait).  Raises the
        flush's exception if the model call failed, or
        :class:`repro.serving.errors.TicketTimeout` (a typed
        :class:`TimeoutError`) if the deadline passed with the ticket
        still **unresolved** — in which case the ticket stays live and
        may still resolve later.
        """
        if not self._event.is_set():
            self._owner._wait_ticket(self, timeout)
        if self._error is not None:
            raise self._error
        if self._scores is None:
            raise TicketTimeout(
                f"scoring ticket unresolved after {timeout}s — the flush "
                "clock has not fired yet (is the engine running?)"
            )
        return self._scores

    @property
    def scores(self) -> np.ndarray:
        """The request's score vector (blocks/flushes if still pending)."""
        return self.wait()

    def _resolve(self, scores: np.ndarray) -> None:
        if self._pad_to is not None and scores.shape[0] < self._pad_to:
            # Degraded truncation: the flush scored only the first K
            # candidates.  Pad to the submitted length with -inf so the
            # score vector stays aligned with the caller's candidate
            # list (unscored candidates rank last).
            padded = np.full(self._pad_to, -np.inf, dtype=scores.dtype)
            padded[: scores.shape[0]] = scores
            scores = padded
        self._scores = scores
        self.resolved_at = time.perf_counter()
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        if not self._event.is_set():
            self._error = error
            self.resolved_at = time.perf_counter()
            self._event.set()


class RequestQueue:
    """Pending request tuples plus the bookkeeping a flush policy needs.

    Pure state — the owning shell provides locking.  ``first_enqueued_at``
    is the ``time.monotonic()`` of the oldest pending request (the
    deadline clock's anchor); ``last_seq`` is the submission sequence
    number of the newest (drain targets).

    Every request tuple carries its ``time.monotonic()`` enqueue
    timestamp as the **last** element and its ticket as the
    **second-to-last**, whatever the task — items are
    ``(user, candidates, ticket, enqueued_at)``, participants
    ``(user, item, candidates, ticket, enqueued_at)`` — so age-based
    shedding and ticket resolution index uniformly.

    ``max_rows`` is the optional **admission (depth) budget**: total
    pending flat rows across both tasks beyond which :meth:`admit`
    rejects with :class:`repro.serving.errors.OverloadError` — the
    fail-fast half of overload control (the shells call it before
    enqueueing, so a rejected submit creates no ticket).
    """

    __slots__ = ("items", "participants", "pending_rows", "first_enqueued_at",
                 "last_seq", "max_rows", "rejected")

    def __init__(self, max_rows: Optional[int] = None) -> None:
        if max_rows is not None and max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.items: List[tuple] = []          # (user, candidates, ticket, t)
        self.participants: List[tuple] = []   # (user, item, candidates, ticket, t)
        self.pending_rows: Dict[str, int] = {"items": 0, "participants": 0}
        self.first_enqueued_at: Optional[float] = None
        self.last_seq = 0
        self.max_rows = max_rows
        #: Lifetime count of submits the depth budget refused.
        self.rejected = 0

    @property
    def has_pending(self) -> bool:
        return bool(self.items or self.participants)

    @property
    def max_task_rows(self) -> int:
        """Largest per-task pending row count (the size-budget trigger)."""
        return max(self.pending_rows.values())

    @property
    def total_rows(self) -> int:
        """Total pending flat rows across tasks (the depth-budget meter)."""
        return sum(self.pending_rows.values())

    def admit(self, rows: int) -> None:
        """Fail fast if ``rows`` more flat rows would burst the depth budget.

        Raises :class:`repro.serving.errors.OverloadError` (and counts
        the rejection) when ``max_rows`` is set and already met — excess
        load becomes an immediate typed error at submit instead of
        unbounded queueing.  A no-op without a budget.
        """
        if self.max_rows is not None and self.total_rows + rows > self.max_rows:
            self.rejected += 1
            raise OverloadError(
                f"admission rejected: {self.total_rows} pending rows + "
                f"{rows} requested exceed the depth budget of {self.max_rows}",
                pending_rows=self.total_rows,
                budget_rows=self.max_rows,
            )

    def _note(self, task: str, rows: int, seq: int, now: float) -> None:
        self.pending_rows[task] += rows
        self.last_seq = seq
        if self.first_enqueued_at is None:
            self.first_enqueued_at = now

    def add_items(self, user: int, candidates: np.ndarray, ticket: PendingScores,
                  seq: int = 0, now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        self.items.append((int(user), candidates, ticket, now))
        self._note("items", candidates.size, seq, now)

    def add_participants(self, user: int, item: int, candidates: np.ndarray,
                         ticket: PendingScores, seq: int = 0,
                         now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        self.participants.append((int(user), int(item), candidates, ticket, now))
        self._note("participants", candidates.size, seq, now)

    def swap(self) -> Tuple[List[tuple], List[tuple], int]:
        """Drain the queue: return ``(items, participants, last_seq)``."""
        drained = (self.items, self.participants, self.last_seq)
        self.items, self.participants = [], []
        self.pending_rows = {"items": 0, "participants": 0}
        self.first_enqueued_at = None
        return drained


def split_expired(
    requests: List[tuple], now: float, max_age_ms: Optional[float]
) -> Tuple[List[tuple], List[tuple]]:
    """Partition drained requests into ``(fresh, expired)`` by queue age.

    ``expired`` holds every request whose enqueue timestamp (the tuple's
    last element) is older than ``max_age_ms`` — the load-shedding half
    of overload control: the worker fails these with
    :class:`repro.serving.errors.DeadlineExceeded` *before* planning, so
    a saturated engine spends its capacity on requests whose callers are
    still waiting.  With no budget everything is fresh.
    """
    if max_age_ms is None or not requests:
        return requests, []
    cutoff = now - max_age_ms / 1000.0
    fresh = [req for req in requests if req[-1] >= cutoff]
    if len(fresh) == len(requests):
        return requests, []
    return fresh, [req for req in requests if req[-1] < cutoff]


class ScoringCore:
    """Validation + flush execution over one model (no queue, no clock)."""

    def __init__(self, model, dtype: str = "float64", executor: str = "auto") -> None:
        if dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be float32|float64, got {dtype!r}")
        if executor not in VALID_EXECUTORS:
            raise ValueError(
                f"executor must be one of {VALID_EXECUTORS}, got {executor!r}"
            )
        self.model = model
        self.dtype = dtype
        self.executor = executor
        if hasattr(model, "executor"):
            model.executor = executor
        self.stats = {
            "requests": 0,
            "flushes": 0,
            "failed_flushes": 0,
            "flat_rows": 0,
            "unique_pairs": 0,
            # Per-flush executor accounting: how many planned model calls
            # ran fused vs on the tape (see docs/backends.md).  Stays
            # zero for models without the executor knob.
            "fused_calls": 0,
            "tape_calls": 0,
        }

    # ------------------------------------------------------------------
    # Submission-side validation
    # ------------------------------------------------------------------
    def _check_ids(self, kind: str, ids, bound_attr: str) -> None:
        """Reject out-of-range ids at submit time.

        A malformed id that only exploded inside a flush would fail
        every co-batched ticket; validating here keeps one bad request
        from poisoning its neighbours' flush.
        """
        bound = getattr(self.model, bound_attr, None)
        ids = np.asarray(ids)
        low = int(ids.min()) if ids.size else 0
        high = int(ids.max()) if ids.size else -1
        if low < 0 or (bound is not None and high >= bound):
            raise ValueError(
                f"{kind} ids must lie in [0, {bound}), got range [{low}, {high}]"
            )

    def check_item_request(self, user: int, candidate_items: Sequence[int]) -> np.ndarray:
        """Validate a Task-A request; return the canonical candidate array."""
        candidates = np.asarray(candidate_items, dtype=np.int64).ravel()
        if candidates.size == 0:
            raise ValueError("a scoring request needs at least one candidate")
        self._check_ids("user", [user], "n_users")
        self._check_ids("item", candidates, "n_items")
        return candidates

    def check_participant_request(
        self, user: int, item: int, candidate_users: Sequence[int]
    ) -> np.ndarray:
        """Validate a Task-B request; return the canonical candidate array."""
        candidates = np.asarray(candidate_users, dtype=np.int64).ravel()
        if candidates.size == 0:
            raise ValueError("a scoring request needs at least one candidate")
        self._check_ids("user", [user], "n_users")
        self._check_ids("item", [item], "n_items")
        self._check_ids("participant", candidates, "n_users")
        return candidates

    # ------------------------------------------------------------------
    # Flush execution
    # ------------------------------------------------------------------
    def execute(self, items: List[tuple], participants: List[tuple]) -> None:
        """One flush over drained request lists.

        Every ticket in ``items``/``participants`` is resolved — with
        scores on success, with the captured exception if its task's
        model call raised.  One task failing never skips the other; the
        first exception is re-raised after both ran so a synchronous
        caller still sees it (the async engine catches it and keeps
        serving).
        """
        if not items and not participants:
            return
        self.stats["flushes"] += 1
        # Unlike the evaluation protocol, the cached encoder pass is
        # deliberately kept across flushes (recomputing it per flush
        # would defeat serving): under float32 the model therefore holds
        # a reduced-precision cache for as long as it serves — hand the
        # model back to training/analysis via release().
        was_training = getattr(self.model, "training", False)
        if was_training:
            # Serve in eval mode (no dropout etc.), like EvalProtocol.run.
            self.model.eval()
        error: Optional[BaseException] = None
        before = self._executor_snapshot()
        try:
            with no_grad(), dtype_scope(self.dtype):
                if items:
                    error = self._execute_items(items)
                if participants:
                    participant_error = self._execute_participants(participants)
                    error = error or participant_error
        finally:
            if was_training:
                self.model.train()
            self._note_executor_calls(before)
        if error is not None:
            self.stats["failed_flushes"] += 1
            raise error

    def _execute_items(self, requests: List[tuple]) -> Optional[BaseException]:
        # The try spans plan construction, the model call AND the
        # scatter: *any* failure (including a model returning a
        # wrong-length score vector, which only scatter detects) must
        # fail the tickets rather than strand them.  _fail is a no-op
        # on already-resolved tickets, so a scatter that failed midway
        # leaves its resolved prefix intact.
        try:
            users = np.concatenate(
                [np.full(len(cands), user, dtype=np.int64) for user, cands, *_ in requests]
            )
            items = np.concatenate([cands for _, cands, *_ in requests])
            plan = ScoringPlan.from_item_pairs(users, items)
            self._scatter(plan, self.model.score_item_plan(plan),
                          [(len(cands), ticket) for _, cands, ticket, *_ in requests])
        except Exception as exc:
            self._fail_tickets([req[-2] for req in requests], exc)
            return exc
        return None

    def _execute_participants(self, requests: List[tuple]) -> Optional[BaseException]:
        try:
            users = np.concatenate(
                [np.full(len(c), user, dtype=np.int64) for user, _, c, *_ in requests]
            )
            items = np.concatenate(
                [np.full(len(c), item, dtype=np.int64) for _, item, c, *_ in requests]
            )
            participants = np.concatenate([c for _, _, c, *_ in requests])
            plan = ScoringPlan.from_triples(users, items, participants)
            self._scatter(plan, self.model.score_participant_plan(plan),
                          [(len(c), ticket) for _, _, c, ticket, *_ in requests])
        except Exception as exc:
            self._fail_tickets([req[-2] for req in requests], exc)
            return exc
        return None

    def _executor_snapshot(self) -> Optional[Dict[str, int]]:
        """The model's executor counters before a flush (delta baseline)."""
        snapshot = getattr(self.model, "executor_stats", None)
        return snapshot() if snapshot is not None else None

    def _note_executor_calls(self, before: Optional[Dict[str, int]]) -> None:
        """Fold one flush's fused/tape call deltas into ``self.stats``.

        The model's workspace counters are lifetime totals shared with
        every other caller (eval, direct scoring), so the flush accounts
        only for its own delta.
        """
        if before is None:
            return
        after = self.model.executor_stats()
        for key in ("fused_calls", "tape_calls"):
            self.stats[key] += after[key] - before[key]

    def _fail_tickets(self, tickets: List[PendingScores], exc: BaseException) -> None:
        for ticket in tickets:
            ticket._fail(exc)

    def _scatter(self, plan: ScoringPlan, unique_scores, sizes_and_tickets) -> None:
        self.stats["flat_rows"] += plan.n_flat
        self.stats["unique_pairs"] += plan.n_pairs
        flat = plan.scatter(unique_scores)
        offset = 0
        for size, ticket in sizes_and_tickets:
            # copy: a slice view would pin the whole flush's array alive
            # for as long as any one ticket is retained (and let callers
            # write through into their neighbours' scores).
            ticket._resolve(flat[offset : offset + size].copy())
            offset += size

    # ------------------------------------------------------------------
    # Model lifecycle helpers
    # ------------------------------------------------------------------
    def shard_stats(self) -> Dict[str, dict]:
        """Per-store gather/cache counters of the served model.

        Sharded models answer each flush's planned call with one gather
        per touched shard; the counters (``gathers``, ``shard_touches``,
        ``max_shard_gather_rows`` …, see
        :class:`repro.store.EmbeddingStore`) expose that behaviour —
        ``shard_touches / gathers`` is the effective fan-out per call
        and ``max_shard_gather_rows`` bounds the transient per-shard
        resident rows a flush ever added on top of the shard's owned
        block.  :class:`repro.store.LRUCachedStore`-wrapped tables add
        ``cache_hits``/``cache_misses``/``cache_evictions`` (inner-store
        counters nest under ``"inner"``).  Empty for models without
        store-backed tables.  Safe to call from any thread (counters
        are snapshotted under each store's lock).
        """
        out: Dict[str, dict] = {}
        if hasattr(self.model, "named_modules"):
            for name, store in iter_stores(self.model):
                out[name] = dict(store.stats_snapshot(), n_shards=store.n_shards)
        return out

    def refresh(self) -> None:
        """Re-run the encoder after a weight update (checkpoint swap)."""
        if hasattr(self.model, "invalidate_cache"):
            self.model.invalidate_cache()
        with no_grad(), dtype_scope(self.dtype):
            if hasattr(self.model, "refresh_cache"):
                self.model.refresh_cache()

    def release(self) -> None:
        """Drop the model's serving cache (after flushing, see shells)."""
        if hasattr(self.model, "invalidate_cache"):
            self.model.invalidate_cache()
