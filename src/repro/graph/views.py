"""Construction of the three MGBR interaction views.

From a set of observed deal groups ``<u, i, G>`` (Sec. II-C2):

* ``G_UI`` gets an edge (u, i) whenever ``u`` launched a group on ``i``;
* ``G_PI`` gets an edge (p, i) whenever ``p`` joined a group on ``i``;
* ``G_UP`` gets an edge (u, p) whenever ``p`` joined a group launched by
  ``u``; edges between two participants are deliberately **not** added
  (the paper verified p-p edges slightly hurt).

``G_UI`` and ``G_PI`` are bipartite and are embedded in a single
``(|U|+|I|)``-node index space: user ``u`` is node ``u`` and item ``i``
is node ``|U| + i``, matching the paper's
``X_UI ∈ R^{(|U|+|I|)×d}`` convention.  ``G_UP`` lives on ``|U|`` nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import scipy.sparse as sp

from repro.graph.adjacency import edges_to_adjacency, normalized_adjacency

__all__ = ["GraphViews", "build_views"]


@dataclass(frozen=True)
class GraphViews:
    """The three normalized view adjacencies plus sizing metadata.

    Attributes
    ----------
    a_ui / a_pi:
        ``(|U|+|I|) × (|U|+|I|)`` normalized adjacencies of the
        initiator- and participant-views.
    a_up:
        ``|U| × |U|`` normalized adjacency of the social view.
    n_users / n_items:
        entity counts; item ``i`` is node ``n_users + i`` in ui/pi space.
    """

    a_ui: sp.csr_matrix
    a_pi: sp.csr_matrix
    a_up: sp.csr_matrix
    n_users: int
    n_items: int

    @property
    def n_nodes_bipartite(self) -> int:
        """Node count of the user+item index space."""
        return self.n_users + self.n_items

    def item_node(self, item: int) -> int:
        """Map an item id to its node index in ui/pi space."""
        return self.n_users + item


def build_views(
    groups: Sequence,
    n_users: int,
    n_items: int,
    include_participant_edges: bool = False,
) -> GraphViews:
    """Build and normalize ``G_UI``, ``G_PI``, ``G_UP`` from deal groups.

    Parameters
    ----------
    groups:
        iterable of objects with ``initiator``, ``item`` and
        ``participants`` attributes (:class:`repro.data.schema.DealGroup`).
    n_users / n_items:
        entity-space sizes.
    include_participant_edges:
        if True, also add p-p edges within each group to ``G_UP`` — the
        variant the paper tested and found slightly *worse* (footnote 1);
        exposed for the corresponding ablation experiment.
    """
    ui_edges: List[Tuple[int, int]] = []
    pi_edges: List[Tuple[int, int]] = []
    up_edges: List[Tuple[int, int]] = []
    for group in groups:
        u, i = int(group.initiator), int(group.item)
        ui_edges.append((u, n_users + i))
        for p in group.participants:
            p = int(p)
            pi_edges.append((p, n_users + i))
            up_edges.append((u, p))
        if include_participant_edges:
            members = [int(p) for p in group.participants]
            for a_idx in range(len(members)):
                for b_idx in range(a_idx + 1, len(members)):
                    up_edges.append((members[a_idx], members[b_idx]))

    n_bip = n_users + n_items
    a_ui = normalized_adjacency(edges_to_adjacency(ui_edges, n_bip))
    a_pi = normalized_adjacency(edges_to_adjacency(pi_edges, n_bip))
    a_up = normalized_adjacency(edges_to_adjacency(up_edges, n_users))
    return GraphViews(a_ui=a_ui, a_pi=a_pi, a_up=a_up, n_users=n_users, n_items=n_items)
