"""Tests for the synthetic Beibei-style generator.

Beyond mechanical checks, these verify the generator produces the
*structural signals* the models rely on (DESIGN.md substitution
argument): preference-aligned launches/joins and community-driven
social co-occurrence.
"""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_dataset, generate_world
from repro.data.synthetic import generate_groups


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_users", 0),
            ("n_items", -1),
            ("n_groups", 0),
            ("latent_dim", 0),
            ("max_group_size", 0),
            ("affinity_temperature", 0.0),
            ("social_weight", -0.1),
            ("min_interactions", -1),
        ],
    )
    def test_invalid_fields(self, field, value):
        config = SyntheticConfig(**{field: value})
        with pytest.raises(ValueError):
            config.validate()

    def test_bad_split_ratios(self):
        with pytest.raises(ValueError):
            SyntheticConfig(split_ratios=(1, 2)).validate()


class TestWorld:
    def test_world_shapes(self):
        config = SyntheticConfig(n_users=50, n_items=20)
        world = generate_world(config, seed=0)
        assert world.user_factors.shape == (50, config.latent_dim)
        assert world.item_factors.shape == (20, config.latent_dim)
        assert world.item_popularity.shape == (20,)
        assert world.user_community.shape == (50,)
        np.testing.assert_allclose(world.user_activity.sum(), 1.0)

    def test_determinism(self):
        config = SyntheticConfig(n_users=30, n_items=10)
        a = generate_world(config, seed=5)
        b = generate_world(config, seed=5)
        np.testing.assert_array_equal(a.user_factors, b.user_factors)

    def test_different_seeds_differ(self):
        config = SyntheticConfig(n_users=30, n_items=10)
        a = generate_world(config, seed=5)
        b = generate_world(config, seed=6)
        assert not np.allclose(a.user_factors, b.user_factors)


class TestGroupGeneration:
    def _world(self, **kw):
        config = SyntheticConfig(n_users=60, n_items=25, n_groups=250, **kw)
        return generate_world(config, seed=1)

    def test_group_sizes_within_bounds(self):
        world = self._world(max_group_size=4)
        groups = generate_groups(world, seed=2)
        assert all(1 <= g.size <= 4 for g in groups)

    def test_participants_exclude_initiator(self):
        groups = generate_groups(self._world(), seed=2)
        assert all(g.initiator not in g.participants for g in groups)

    def test_launches_follow_preference(self):
        # Initiators pick items with above-average latent affinity.
        world = self._world()
        groups = generate_groups(world, seed=3)
        users = np.array([g.initiator for g in groups])
        items = np.array([g.item for g in groups])
        chosen = world.affinity(users, items).mean()
        rng = np.random.default_rng(0)
        rand_items = rng.integers(0, 25, size=len(groups))
        random_aff = world.affinity(users, rand_items).mean()
        assert chosen > random_aff + 0.1

    def test_joins_follow_social_communities(self):
        # With a strong social weight participants share the initiator's
        # community far above the 1/n_communities base rate.
        world = self._world(social_weight=3.0)
        groups = generate_groups(world, seed=4)
        same = total = 0
        for g in groups:
            for p in g.participants:
                same += world.user_community[p] == world.user_community[g.initiator]
                total += 1
        base_rate = 1.0 / world.config.n_communities
        assert same / total > 2 * base_rate

    def test_zero_social_weight_removes_community_signal(self):
        world_off = self._world(social_weight=0.0)
        groups = generate_groups(world_off, seed=4)
        same = total = 0
        for g in groups:
            for p in g.participants:
                same += world_off.user_community[p] == world_off.user_community[g.initiator]
                total += 1
        # Communities still correlate with taste (factors are blended), so
        # allow slack above base rate — but far below the strong-social case.
        assert same / total < 0.45


class TestGenerateDataset:
    def test_end_to_end_dataset(self):
        ds = generate_dataset(
            SyntheticConfig(n_users=100, n_items=30, n_groups=400), seed=9
        )
        assert ds.n_users > 0 and ds.n_items > 0
        assert ds.n_groups == len(ds.train) + len(ds.validation) + len(ds.test)
        # 7:3:1 split ordering.
        assert len(ds.train) > len(ds.validation) > len(ds.test)

    def test_min_interactions_enforced(self):
        ds = generate_dataset(
            SyntheticConfig(n_users=100, n_items=30, n_groups=400, min_interactions=5),
            seed=9,
        )
        counts = ds.user_interaction_counts()
        assert min(counts.values()) >= 5

    def test_ids_are_contiguous(self):
        ds = generate_dataset(
            SyntheticConfig(n_users=100, n_items=30, n_groups=400), seed=9
        )
        users = {g.initiator for g in ds.all_groups}
        users |= {p for g in ds.all_groups for p in g.participants}
        items = {g.item for g in ds.all_groups}
        assert users == set(range(ds.n_users))
        assert items == set(range(ds.n_items))

    def test_deterministic(self):
        cfg = SyntheticConfig(n_users=60, n_items=20, n_groups=200)
        a = generate_dataset(cfg, seed=4)
        b = generate_dataset(cfg, seed=4)
        assert a.train == b.train and a.test == b.test
