"""Argument-validation helpers shared across the library.

Recommender pipelines shuffle integer id arrays between many components;
silent out-of-range indices turn into NaNs three modules later.  These
helpers fail fast with messages naming the offending argument.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "check_positive",
    "check_probability",
    "check_unit_interval",
    "check_index_array",
]


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0 if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")


def check_unit_interval(name: str, value: float, *, open_ends: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1] (or (0, 1) if open)."""
    if open_ends:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must lie strictly inside (0, 1), got {value!r}")
    else:
        check_probability(name, value)


def check_index_array(name: str, array: Any, high: int) -> np.ndarray:
    """Coerce ``array`` to a 1-D int64 index array and bounds-check it.

    Parameters
    ----------
    name: argument name used in error messages.
    array: anything ``np.asarray`` accepts.
    high: exclusive upper bound for the indices.
    """
    out = np.asarray(array)
    if out.ndim == 0:
        out = out.reshape(1)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    if out.size and not np.issubdtype(out.dtype, np.integer):
        if np.any(out != np.floor(out)):
            raise TypeError(f"{name} must contain integers, got dtype {out.dtype}")
    out = out.astype(np.int64, copy=False)
    if out.size:
        lo, hi = int(out.min()), int(out.max())
        if lo < 0 or hi >= high:
            raise IndexError(f"{name} contains indices outside [0, {high}): min={lo}, max={hi}")
    return out
