"""GBMF baseline — the MF variant of GBGCN (Zhang et al., ICDE 2021).

"It directly uses dot-based similarity … to calculate scores of
candidate items and candidate users as MF-based recommendation models"
(paper Sec. III-B).  Users keep *two role embeddings* (initiator /
participant) like GBGCN but without any graph propagation:

* Task A: ``s(i|u) = σ(⟨u_init, i⟩)``
* Task B: ``s(p|u,i) = σ(⟨p_part, u_init⟩)`` — the paper tailors *every*
  baseline's Task-B head to the participant/initiator inner product
  ("we can directly use the distance of p's embedding and u's
  embedding as s(p|u,i)"); GBMF contributes its role-specific tables
  but, like the rest, no item-aware participant scoring.
"""

from __future__ import annotations

from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender
from repro.nn.layers import Embedding
from repro.store import DenseStore
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["GBMF"]


class GBMF(GroupBuyingRecommender):
    """Role-aware matrix factorization for group buying.

    Task A scores ``⟨initiator-role u, item⟩``; Task B falls back to the
    base-class tailoring ``⟨participant-role p, initiator-role u⟩``.

    Parameters
    ----------
    n_users / n_items: entity counts.
    dim: latent factor width.
    seed: initialisation seed.
    n_shards / partition / service: storage layout of the three tables
        (:mod:`repro.store`); with ``n_shards >= 2`` (or ``service=True``)
        the scoring paths gather rows straight from the shard workers and
        no full table is ever materialised — scores stay bit-identical to
        dense because gathers copy exact rows.  ``service=True`` moves
        the shards into worker processes (the cross-process shard
        service, :class:`repro.store.ProcessShardedStore`).
    quantize: quantised memory tier (``None``/"int8"/"fp16") for the
        three tables — see docs/quantization.md.  Any quantised layout
        hands the scoring paths the stores (like the sharded layouts),
        so inference gathers read the compact tier while training
        bypasses it.
    """

    def __init__(
        self,
        n_users: int,
        n_items: int,
        dim: int = 32,
        seed: SeedLike = 0,
        n_shards: int = 0,
        partition: str = "range",
        service: bool = False,
        quantize=None,
    ) -> None:
        super().__init__(n_users, n_items)
        rngs = spawn_rngs(seed, 3)
        self.initiator_table = Embedding(
            n_users, dim, seed=rngs[0], n_shards=n_shards, partition=partition,
            service=service, quantize=quantize,
        )
        self.participant_table = Embedding(
            n_users, dim, seed=rngs[1], n_shards=n_shards, partition=partition,
            service=service, quantize=quantize,
        )
        self.item_table = Embedding(
            n_items, dim, seed=rngs[2], n_shards=n_shards, partition=partition,
            service=service, quantize=quantize,
        )
        # Store-backed bundles route scoring through store.gather, which
        # is what lets the quantised tier serve inference reads.
        self._sharded = (
            n_shards >= 2
            or service
            or not isinstance(self.initiator_table.store, DenseStore)
        )

    def compute_embeddings(self) -> EmbeddingBundle:
        """MF has no encoder — the tables are the representations.

        Dense layouts hand the scoring paths the materialised tables
        (the historical behaviour, and ``all()`` is free there);
        sharded layouts hand them the stores, so every score reads only
        the rows its plan touches — one gather per shard per call.
        """
        if self._sharded:
            return EmbeddingBundle(
                user=self.initiator_table.store,
                item=self.item_table.store,
                participant=self.participant_table.store,
            )
        return EmbeddingBundle(
            user=self.initiator_table.all(),
            item=self.item_table.all(),
            participant=self.participant_table.all(),
        )
