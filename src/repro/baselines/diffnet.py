"""DiffNet baseline (Wu et al., SIGIR 2019) tailored to group buying.

A social recommendation model: user embeddings diffuse over the social
graph layer by layer, and the final user representation adds the mean of
the items the user interacted with:

``h⁰_u = e_u``;  ``h^{l+1}_u = σ(W^l [ h^l_u ; mean_{v∈N(u)} h^l_v ])``;
``final_u = h^L_u + mean_{i∈I(u)} e_i``.

For group buying the "social" graph is the initiator-participant
co-group graph ``G_UP`` — which, as the paper's Table III discussion
notes, encodes *common preference* rather than true friendship; DiffNet
trusting it as social signal is exactly why it underperforms here.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender
from repro.nn import functional as F
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module
from repro.nn.sparse import spmm
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["DiffNet"]


def _row_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Row-stochastic normalization (mean aggregation)."""
    m = matrix.tocsr().astype(np.float64)
    degree = np.asarray(m.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv = 1.0 / degree
    inv[~np.isfinite(inv)] = 0.0
    return (sp.diags(inv) @ m).tocsr()


class DiffNet(GroupBuyingRecommender):
    """Social influence diffusion over the co-group graph.

    Parameters
    ----------
    groups: training deal groups.
    dim: embedding width.
    n_layers: diffusion depth.
    seed: initialisation seed.
    """

    def __init__(
        self,
        groups: Sequence,
        n_users: int,
        n_items: int,
        dim: int = 32,
        n_layers: int = 2,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__(n_users, n_items)
        rngs = spawn_rngs(seed, n_layers + 2)
        social_rows, social_cols = [], []
        ui_rows, ui_cols = [], []
        for g in groups:
            ui_rows.append(g.initiator)
            ui_cols.append(g.item)
            for p in g.participants:
                social_rows.extend([g.initiator, p])
                social_cols.extend([p, g.initiator])
                ui_rows.append(p)
                ui_cols.append(g.item)
        social = sp.coo_matrix(
            (np.ones(len(social_rows)), (social_rows, social_cols)),
            shape=(n_users, n_users),
        ).tocsr()
        social.data = np.minimum(social.data, 1.0)
        interactions = sp.coo_matrix(
            (np.ones(len(ui_rows)), (ui_rows, ui_cols)), shape=(n_users, n_items)
        ).tocsr()
        interactions.data = np.minimum(interactions.data, 1.0)
        self.social_mean = _row_normalize(social)
        self.interest_mean = _row_normalize(interactions)

        self.user_table = Embedding(n_users, dim, seed=rngs[0])
        self.item_table = Embedding(n_items, dim, seed=rngs[1])
        self._layers: List[Linear] = []
        for layer_idx in range(n_layers):
            layer = Linear(2 * dim, dim, seed=rngs[layer_idx + 2])
            setattr(self, f"diffusion{layer_idx}", layer)
            self._layers.append(layer)

    def compute_embeddings(self) -> EmbeddingBundle:
        """Diffuse user embeddings socially, then fuse interacted items."""
        h = self.user_table.all()
        for layer in self._layers:
            neighbour = spmm(self.social_mean, h)
            h = F.sigmoid(layer(concat([h, neighbour], axis=1)))
        items = self.item_table.all()
        users = h + spmm(self.interest_mean, items)
        return EmbeddingBundle(user=users, item=items, participant=users)
