"""Expert networks of the multi-task learning module (Eq. 7-9).

Each of the three sub-modules (A = Task A, B = Task B, S = shared) owns
``K`` expert networks per layer.  An expert is a single linear map:

* ``e^l_{Ai} = (g^{l-1}_A || g^{l-1}_S) W^l_{Ai}``   (Eq. 7)
* ``e^l_{Bi} = (g^{l-1}_B || g^{l-1}_S) W^l_{Bi}``   (Eq. 8)
* ``e^l_{Si} = (g^{l-1}_A || g^{l-1}_S || g^{l-1}_B) W^l_{Si}``  (Eq. 9)

The bank's forward takes the already-concatenated gate state and returns
the stacked expert outputs ``E^l ∈ (batch, K, d)`` which the gates
attend over.
"""

from __future__ import annotations

from typing import List

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, stack
from repro.utils.rng import SeedLike, as_rng

__all__ = ["ExpertBank"]


class ExpertBank(Module):
    """``K`` parallel linear experts sharing an input, stacked on output.

    Parameters
    ----------
    in_dim: width of the concatenated gate state feeding the experts.
    out_dim: expert output width ``d`` (all experts share it).
    n_experts: ``K`` (Table II uses 6).
    seed: initialisation RNG.
    """

    def __init__(self, in_dim: int, out_dim: int, n_experts: int, seed: SeedLike = None) -> None:
        super().__init__()
        if n_experts < 1:
            raise ValueError(f"need at least one expert, got {n_experts}")
        rng = as_rng(seed)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.n_experts = n_experts
        self._experts: List[Linear] = []
        for k in range(n_experts):
            expert = Linear(in_dim, out_dim, bias=False, seed=rng)
            setattr(self, f"expert{k}", expert)
            self._experts.append(expert)

    def forward(self, gate_state: Tensor) -> Tensor:
        """Apply every expert to ``gate_state`` → ``(batch, K, d)``.

        ``gate_state`` is the concatenation the relevant equation calls
        for (A/B: two gates; S: three gates).
        """
        if gate_state.shape[-1] != self.in_dim:
            raise ValueError(
                f"expert bank expects input width {self.in_dim}, got {gate_state.shape[-1]}"
            )
        outputs = [expert(gate_state) for expert in self._experts]
        return stack(outputs, axis=1)

    def project_blocks(self, x: Tensor, blocks) -> Tensor:
        """Per-entity partial bank: every expert's weight-row blocks on ``x``.

        ``blocks`` selects (and sums) the rows of each expert weight that
        multiply one segment of the concatenated gate state (see
        :meth:`repro.nn.layers.Linear.project_blocks`).  Returns
        ``(rows, K, d)`` — the contribution of this segment to the full
        expert bank; the scoring plan computes it once per unique entity
        and gathers per pair, which is where the layer-0 FLOP cut comes
        from (Eq. 7-9 distribute over the concatenation).
        """
        return stack([expert.project_blocks(x, blocks) for expert in self._experts], axis=1)
