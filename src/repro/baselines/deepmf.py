"""DeepMF baseline (Xue et al., IJCAI 2017) tailored to group buying.

Deep matrix factorization: user and item representations pass through
separate multi-layer non-linear projection towers, and the interaction
score is the inner product of the projected vectors.  The original feeds
interaction-matrix rows/columns; with learnable input embeddings (the
standard latent-input variant) the towers play the identical role while
keeping the parameter count in line with Table V's smallest model.

Tailoring (paper Sec. III-B): Task A is direct item recommendation;
Task B uses the inner product of the projected participant and initiator
representations.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender
from repro.nn.layers import MLP, Embedding
from repro.nn.module import Module
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["DeepMF"]


class DeepMF(GroupBuyingRecommender):
    """Two-tower deep matrix factorization.

    Parameters
    ----------
    n_users / n_items: entity counts.
    dim: input embedding width.
    hidden: tower hidden widths; the final width is the matching space.
    seed: initialisation seed.
    """

    def __init__(
        self,
        n_users: int,
        n_items: int,
        dim: int = 32,
        hidden: Tuple[int, ...] = (32,),
        out_dim: int = 16,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__(n_users, n_items)
        rngs = spawn_rngs(seed, 4)
        self.user_table = Embedding(n_users, dim, seed=rngs[0])
        self.item_table = Embedding(n_items, dim, seed=rngs[1])
        self.user_tower = MLP(dim, list(hidden), out_dim, activation="relu", seed=rngs[2])
        self.item_tower = MLP(dim, list(hidden), out_dim, activation="relu", seed=rngs[3])

    def compute_embeddings(self) -> EmbeddingBundle:
        """Project all users and items through their towers."""
        users = self.user_tower(self.user_table.all())
        items = self.item_tower(self.item_table.all())
        return EmbeddingBundle(user=users, item=items, participant=users)
