"""Tests for the candidate-list evaluation protocol and the case study."""

import numpy as np
import pytest

from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender
from repro.data import NegativeSampler, extract_task_b
from repro.eval import EvalProtocol, evaluate_model, pca_project, run_case_study
from repro.eval.casestudy import _dispersion_ratio
from repro.nn import Embedding


class _OracleModel(GroupBuyingRecommender):
    """Scores candidates by ground-truth membership — must hit MRR=1."""

    def __init__(self, dataset):
        super().__init__(dataset.n_users, dataset.n_items)
        self._user_items = dataset.user_items(("train", "validation", "test"))
        self._members = dataset.group_members(("train", "validation", "test"))
        self.table = Embedding(2, 2, seed=0)  # parameters so Module is valid

    def compute_embeddings(self):
        t = self.table.all()
        return EmbeddingBundle(user=t, item=t, participant=t)

    def score_items(self, users, items):
        from repro.nn import tensor

        scores = [
            1.0 if int(i) in self._user_items.get(int(u), set()) else 0.0
            for u, i in zip(users, items)
        ]
        return tensor(np.asarray(scores))

    def score_participants(self, users, items, participants):
        from repro.nn import tensor

        scores = [
            1.0 if int(p) in self._members.get((int(u), int(i)), set()) else 0.0
            for u, i, p in zip(users, items, participants)
        ]
        return tensor(np.asarray(scores))


class _RandomModel(GroupBuyingRecommender):
    """Pseudo-random but *pure* per-request scores — MRR near the chance mean.

    Scores are a hash of the request ids rather than draws off a stateful
    stream: the protocol's scoring plan dedups repeated (u, i) requests,
    so a scorer must be a pure function of its ids for evaluation to be
    well-defined (a stateful scorer would give the same pair different
    scores depending on how many times the planner asks).
    """

    def __init__(self, dataset, seed=0):
        super().__init__(dataset.n_users, dataset.n_items)
        self.seed = seed
        self.table = Embedding(2, 2, seed=0)

    def compute_embeddings(self):
        t = self.table.all()
        return EmbeddingBundle(user=t, item=t, participant=t)

    @staticmethod
    def _hash(*columns, seed=0):
        mixed = seed * 0.618
        for weight, col in zip((12.9898, 78.233, 37.719), columns):
            mixed = mixed + weight * np.asarray(col, dtype=np.float64)
        return np.sin(mixed) * 43758.5453 % 1.0

    def score_items(self, users, items):
        from repro.nn import tensor

        return tensor(self._hash(users, items, seed=self.seed))

    def score_participants(self, users, items, participants):
        from repro.nn import tensor

        return tensor(self._hash(users, items, participants, seed=self.seed))


class TestProtocol:
    def test_oracle_scores_perfectly(self, tiny_dataset):
        result = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10).run(
            _OracleModel(tiny_dataset)
        )
        assert result.task_a["MRR@10"] == 1.0
        assert result.task_b["MRR@10"] == 1.0
        assert result.task_a["NDCG@10"] == 1.0

    def test_random_model_near_chance(self, tiny_dataset):
        protocol = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10)
        model = _RandomModel(tiny_dataset)
        result = protocol.run(model)
        # Candidate lists sample negatives with replacement, and a pure
        # scorer gives duplicate candidates tied scores, which raises
        # E[1/rank] above the 10-distinct-candidate chance mean (~0.293)
        # on this tiny item pool — so assert a chance *band* between
        # catastrophic and oracle, plus exact parity with the reference
        # per-instance loop (purity makes the two paths comparable).
        chance = sum(1.0 / r for r in range(1, 11)) / 10  # ≈ 0.293
        for mrr in (result.task_a["MRR@10"], result.task_b["MRR@10"]):
            assert chance - 0.12 < mrr < 0.6
        assert result.flat() == protocol.run_per_instance(model).flat()

    def test_candidate_lists_deterministic_across_models(self, tiny_dataset):
        protocol = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10, seed=77)
        lists_a, lists_b = protocol._candidate_lists()
        again_a, again_b = protocol._candidate_lists()
        np.testing.assert_array_equal(lists_a["candidates"], again_a["candidates"])
        np.testing.assert_array_equal(lists_b["candidates"], again_b["candidates"])

    def test_positive_is_column_zero_and_excluded_from_negatives(self, tiny_dataset):
        protocol = EvalProtocol(tiny_dataset, n_negatives=9, cutoff=10, split="test")
        lists_a, lists_b = protocol._candidate_lists()
        for row in lists_a["candidates"]:
            assert row[0] not in row[1:]
        for row in lists_b["candidates"]:
            assert row[0] not in row[1:]

    def test_max_instances_caps_work(self, tiny_dataset):
        protocol = EvalProtocol(tiny_dataset, max_instances=3)
        lists_a, lists_b = protocol._candidate_lists()
        assert len(lists_a["users"]) == 3
        assert len(lists_b["users"]) == 3

    def test_1_99_protocol_shape(self, tiny_dataset):
        protocol = EvalProtocol(tiny_dataset, n_negatives=99, cutoff=100, max_instances=2)
        lists_a, _ = protocol._candidate_lists()
        assert lists_a["candidates"].shape[1] == 100

    def test_empty_split_rejected(self, tiny_dataset):
        import dataclasses

        empty = dataclasses.replace(tiny_dataset)  # GroupBuyingDataset is not frozen
        empty = type(tiny_dataset)(
            n_users=tiny_dataset.n_users,
            n_items=tiny_dataset.n_items,
            train=tiny_dataset.train,
            validation=[],
            test=[],
        )
        with pytest.raises(ValueError):
            EvalProtocol(empty, split="test").run(_RandomModel(empty))

    def test_evaluate_model_returns_both_cutoffs(self, tiny_dataset):
        results = evaluate_model(
            _RandomModel(tiny_dataset),
            tiny_dataset,
            protocols=((9, 10), (19, 20)),
            max_instances=5,
        )
        assert set(results) == {"@10", "@20"}
        flat = results["@10"].flat()
        assert "A/MRR@10" in flat and "B/NDCG@10" in flat

    def test_model_left_in_training_mode(self, tiny_dataset):
        model = _RandomModel(tiny_dataset)
        model.train()
        EvalProtocol(tiny_dataset, max_instances=2).run(model)
        assert model.training


class TestPCA:
    def test_projection_shape_and_variance(self, rng):
        x = rng.normal(size=(30, 8))
        points, ratio = pca_project(x, 2)
        assert points.shape == (30, 2)
        assert 0 < ratio.sum() <= 1.0 + 1e-9

    def test_first_component_captures_dominant_direction(self, rng):
        base = rng.normal(size=(100, 1)) * np.array([[10.0]])
        noise = rng.normal(size=(100, 4)) * 0.1
        x = np.concatenate([base, noise], axis=1)
        _, ratio = pca_project(x, 2)
        assert ratio[0] > 0.9

    def test_invalid_components(self, rng):
        with pytest.raises(ValueError):
            pca_project(rng.normal(size=(5, 3)), 4)

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError):
            pca_project(rng.normal(size=5), 1)


class TestDispersionRatio:
    def test_tight_clusters_score_lower(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
        labels = np.repeat(np.arange(3), 20)
        tight = centers[labels] + rng.normal(size=(60, 2)) * 0.1
        loose = centers[labels] + rng.normal(size=(60, 2)) * 3.0
        assert _dispersion_ratio(tight, labels) < _dispersion_ratio(loose, labels)

    def test_needs_two_groups(self, rng):
        with pytest.raises(ValueError):
            _dispersion_ratio(rng.normal(size=(5, 2)), np.zeros(5))


class TestCaseStudy:
    def test_runs_on_model(self, tiny_dataset, tiny_mgbr):
        study = run_case_study(tiny_mgbr, tiny_dataset.train, n_groups=4, seed=0)
        assert study.points.shape[1] == 2
        assert study.dispersion_ratio > 0
        assert len(study.roles) == study.points.shape[0]
        assert {"initiator", "item", "participant"} == set(study.roles)

    def test_too_few_groups_rejected(self, tiny_dataset, tiny_mgbr):
        with pytest.raises(ValueError):
            run_case_study(tiny_mgbr, tiny_dataset.train[:1], n_groups=5)
