"""GBGCN baseline (Zhang et al., ICDE 2021) tailored to both sub-tasks.

GBGCN is the prior group-buying model: it distinguishes the initiator
and participant roles, builds the role-specific user-item interaction
graphs plus the social graph, and propagates embeddings with GCNs —
"an embedding propagation network is leveraged to extract user
preferences in different roles" (paper Sec. III-B).  Per the paper's
task formalization it natively addresses only Task A; Task B uses the
standard tailoring (participant-role vs initiator-role inner product).

Implementation: one GCN per role view (``G_UI``, ``G_PI``) gives each
user an initiator- and a participant-role embedding and each item two
view embeddings (concatenated); one mean-aggregation pass over the
social graph then smooths each role embedding with its neighbours
(GBGCN's cross-user influence term).

Task A additionally mixes the participant-role opinion of the item —
GBGCN's in-group objective models whether *followers* will buy:
``s(i|u) = σ(⟨u_init, i⟩ + λ·⟨mean-social-nbr(u)_part, i⟩)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import EmbeddingBundle, GroupBuyingRecommender
from repro.graph.gcn import GCN
from repro.graph.views import build_views
from repro.nn import functional as F
from repro.nn.sparse import spmm
from repro.nn.tensor import Tensor, concat, take_rows
from repro.utils.rng import SeedLike, spawn_rngs

__all__ = ["GBGCN"]


def _row_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    m = matrix.tocsr().astype(np.float64)
    degree = np.asarray(m.sum(axis=1)).ravel()
    with np.errstate(divide="ignore"):
        inv = 1.0 / degree
    inv[~np.isfinite(inv)] = 0.0
    return (sp.diags(inv) @ m).tocsr()


class GBGCN(GroupBuyingRecommender):
    """Role-aware graph convolutional group-buying recommender.

    Parameters
    ----------
    groups: training deal groups.
    dim: per-view embedding width.
    n_layers: GCN depth per view.
    social_weight: λ — weight of the follower-opinion term in Task A.
    seed: initialisation seed.
    """

    def __init__(
        self,
        groups: Sequence,
        n_users: int,
        n_items: int,
        dim: int = 32,
        n_layers: int = 2,
        social_weight: float = 0.5,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__(n_users, n_items)
        rngs = spawn_rngs(seed, 2)
        self.social_weight = social_weight
        views = build_views(groups, n_users, n_items)
        self.views = views
        self.gcn_init = GCN(
            views.n_nodes_bipartite, dim, n_layers, seed=rngs[0], adjacency=views.a_ui
        )
        self.gcn_part = GCN(
            views.n_nodes_bipartite, dim, n_layers, seed=rngs[1], adjacency=views.a_pi
        )
        # Row-stochastic social operator for neighbour smoothing; built
        # from the same co-group edges as the normalized a_up.
        self.social_mean = _row_normalize(views.a_up)

    def compute_embeddings(self) -> EmbeddingBundle:
        """Role GCNs + social smoothing; items concatenate both views."""
        n_users = self.n_users
        x_init = self.gcn_init()
        x_part = self.gcn_part()
        users_init = x_init[slice(0, n_users)]
        users_part = x_part[slice(0, n_users)]
        items = concat(
            [x_init[slice(n_users, None)], x_part[slice(n_users, None)]], axis=1
        )
        # Social influence: mix each user with co-group neighbours
        # (λ-weighted mean smoothing — GBGCN's cross-user term).
        users_init = users_init + self.social_weight * spmm(self.social_mean, users_init)
        users_part = users_part + self.social_weight * spmm(self.social_mean, users_part)
        # Each user's full representation stacks both role views so user
        # and item widths match (both 2*dim); Task A's inner product then
        # combines the initiator's own preference (init view · item init
        # view) with the follower-opinion term (part view · item part view).
        users_role = concat([users_init, users_part], axis=1)
        return EmbeddingBundle(user=users_role, item=items, participant=users_role)
