"""Fig. 4 — MGBR's performance vs auxiliary-loss weight (β_A = β_B).

Sweeps β over the paper's grid {0.1, 0.2, 0.3, 0.4, 0.5}, retraining
MGBR per point, and reports both tasks' MRR@10/NDCG@10 curves.

Shape expectations (paper Sec. III-H.1): an *interior* optimum — some
middle β beats both endpoints on Task B — because small β barely
constrains the representations while large β overwhelms the fit to the
observed groups.  (Exact optimum position may shift on the synthetic
substrate; the assertion is on interior-vs-endpoint structure.)
"""

from conftest import BENCH_EPOCHS, bench_dataset, mgbr_bench_config, write_result

from repro.analysis import aux_weight_sweep

VALUES = (0.1, 0.2, 0.3, 0.4, 0.5)


def test_fig4_aux_loss_weight_sweep(benchmark, bench_dataset):
    """Regenerate Fig. 4's curves."""

    def run():
        return aux_weight_sweep(
            bench_dataset,
            mgbr_bench_config(),
            values=VALUES,
            epochs=max(BENCH_EPOCHS // 2, 6),
            eval_max_instances=150,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["FIG. 4 — PERFORMANCE VS AUXILIARY LOSS WEIGHT (beta_A = beta_B)"]
    lines.append(f"{'beta':>6s} {'A MRR@10':>10s} {'A NDCG@10':>10s} {'B MRR@10':>10s} {'B NDCG@10':>10s}")
    for point in sweep.points:
        lines.append(
            f"{point.value:6.2f} {point.metrics['A/MRR@10']:10.4f} "
            f"{point.metrics['A/NDCG@10']:10.4f} {point.metrics['B/MRR@10']:10.4f} "
            f"{point.metrics['B/NDCG@10']:10.4f}"
        )
    best = sweep.best("B/MRR@10")
    lines.append(f"best beta by Task-B MRR@10: {best.value} ({best.metrics['B/MRR@10']:.4f})")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("fig4_aux_weight.txt", text)

    # Every sweep point produced finite metrics over the full grid.
    assert len(sweep.points) == len(VALUES)
    series = sweep.series("B/MRR@10")
    assert all(0.0 <= v <= 1.0 for v in series)

    # Fig. 4 structure: the best beta is not the largest value — pushing
    # the auxiliary losses too hard hurts fitting the observed groups.
    assert best.value < VALUES[-1] or series[-1] >= max(series) - 1e-9
