"""Model checkpointing to ``.npz``.

Checkpoints hold the flat parameter state-dict plus a small JSON header
(model class name, step counter), enough to restore a model built with
the same constructor arguments — matching how the sweep benchmarks
retrain-and-restore best epochs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "restore_model"]

PathLike = Union[str, Path]

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(model: Module, path: PathLike, extra: Optional[Dict] = None) -> Path:
    """Write ``model``'s parameters (and optional metadata) to ``path``."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    meta = {"model_class": type(model).__name__, "extra": extra or {}}
    payload = dict(model.state_dict())
    payload[_META_KEY] = np.bytes_(json.dumps(meta).encode())
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(path: PathLike) -> Dict:
    """Read a checkpoint into ``{"state": {...}, "meta": {...}}``."""
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(bytes(archive[_META_KEY]).decode())
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
    return {"state": state, "meta": meta}


def restore_model(model: Module, path: PathLike, strict: bool = True) -> Dict:
    """Load a checkpoint's parameters into ``model``; returns the metadata.

    Raises ``ValueError`` when the checkpoint came from a different model
    class (unless ``strict=False``).
    """
    payload = load_checkpoint(path)
    if strict and payload["meta"]["model_class"] != type(model).__name__:
        raise ValueError(
            f"checkpoint is for {payload['meta']['model_class']}, "
            f"refusing to load into {type(model).__name__}"
        )
    model.load_state_dict(payload["state"], strict=strict)
    if hasattr(model, "invalidate_cache"):
        model.invalidate_cache()
    return payload["meta"]
