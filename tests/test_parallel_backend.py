"""The thread-parallel backend: bit-parity, scheduling, knob threading.

The contract under test (see ``docs/backends.md``): every primitive
:class:`repro.nn.ParallelBackend` row-chunks is **bitwise identical** to
the :class:`repro.nn.backend.NumpyBackend` reference at any thread
count and any chunk grid — elementwise ufuncs, non-leading-axis
reductions, ``take``, sorted ``add_at`` — while everything that is not
chunk-invariant (GEMMs, ``power``, unsorted scatters) transparently
takes the inherited serial path.  On top of that sit the plumbing
guarantees: ``backend_scope`` inheritance across pool and worker
threads (``bind_backend``), the ``backend`` knob on the serving
engines and the eval protocol, and deterministic slab scheduling for
the row-parallel fused flush.
"""

import threading

import numpy as np
import pytest

from repro.baselines.gbmf import GBMF
from repro.core import MGBR, MGBRConfig
from repro.eval.protocol import EvalProtocol
from repro.nn import (
    CountingBackend,
    ParallelBackend,
    available_backends,
    backend_scope,
    bind_backend,
    get_backend,
    no_grad,
    resolve_backend,
)
from repro.nn.backend import NumpyBackend
from repro.nn.parallel import MIN_ROWS_ENV, THREADS_ENV
from repro.plan import ScoringPlan
from repro.serving.engine import ServingEngine
from repro.serving.multi import MultiWorkerEngine

REFERENCE = NumpyBackend()


@pytest.fixture()
def par():
    """A low-threshold parallel backend that genuinely chunks in tests."""
    backend = ParallelBackend(n_threads=4, min_parallel_rows=64)
    yield backend
    backend.close()


def _mgbr(dataset, seed=3):
    config = MGBRConfig.small(d=8, n_experts=2, mtl_layers=2)
    return MGBR(dataset.train, dataset.n_users, dataset.n_items,
                config=config, seed=seed)


def _gbmf(dataset, seed=3):
    return GBMF(dataset.n_users, dataset.n_items, dim=8, seed=seed)


# ----------------------------------------------------------------------
# Registration / knob resolution
# ----------------------------------------------------------------------
class TestRegistration:
    def test_registered_at_import(self):
        assert "parallel" in available_backends()
        assert get_backend("parallel").name == "parallel"

    def test_env_knobs_seed_constructor(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "3")
        monkeypatch.setenv(MIN_ROWS_ENV, "128")
        backend = ParallelBackend()
        assert backend.n_threads == 3
        assert backend.min_parallel_rows == 128

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV, "many")
        monkeypatch.setenv(MIN_ROWS_ENV, "")
        backend = ParallelBackend()
        assert backend.n_threads >= 1
        assert backend.min_parallel_rows == 8192

    def test_resolve_backend_modes(self, par):
        assert resolve_backend(par) is par
        assert resolve_backend("parallel").name == "parallel"
        assert resolve_backend("auto", inherited=par) is par
        assert resolve_backend("auto") is get_backend()
        with pytest.raises(ValueError):
            resolve_backend("no-such-backend")

    def test_bind_backend_crosses_threads(self, par):
        """Satellite contract: a pool task sees its submitter's backend."""
        seen = {}

        def probe():
            seen["backend"] = get_backend()

        with backend_scope(par):
            bound = bind_backend(probe)
        worker = threading.Thread(target=bound)
        worker.start()
        worker.join()
        assert seen["backend"] is par


# ----------------------------------------------------------------------
# Slab planning
# ----------------------------------------------------------------------
class TestRowPartition:
    def test_below_threshold_is_serial(self, par):
        assert par.row_partition(63) is None

    def test_single_thread_is_serial(self):
        backend = ParallelBackend(n_threads=1, min_parallel_rows=2)
        assert backend.row_partition(10_000) is None

    def test_grid_covers_range_contiguously(self, par):
        for n_rows in (64, 65, 100, 1000, 8192):
            slabs = par.row_partition(n_rows)
            assert slabs is not None
            assert slabs[0][0] == 0 and slabs[-1][1] == n_rows
            for (_, stop), (start, _) in zip(slabs, slabs[1:]):
                assert stop == start
            assert len(slabs) <= par.n_threads

    def test_grid_is_deterministic(self, par):
        assert par.row_partition(1000) == par.row_partition(1000)
        twin = ParallelBackend(n_threads=4, min_parallel_rows=64)
        try:
            assert twin.row_partition(1000) == par.row_partition(1000)
        finally:
            twin.close()

    def test_no_nested_chunking_inside_slabs(self, par):
        """A slab body calling back into the backend stays serial."""
        nested = []
        slabs = par.row_partition(1000)

        def body(_i, start, stop):
            nested.append(par.row_partition(stop - start + 1000))

        par.run_slabs(slabs, body)
        assert nested and all(grid is None for grid in nested)

    def test_run_slabs_propagates_first_error(self, par):
        slabs = par.row_partition(1000)

        def body(i, start, stop):
            if i == len(slabs) - 1:
                raise RuntimeError("slab boom")

        with pytest.raises(RuntimeError, match="slab boom"):
            par.run_slabs(slabs, body)


# ----------------------------------------------------------------------
# Primitive bit-parity vs the reference backend
# ----------------------------------------------------------------------
class TestPrimitiveParity:
    ROWS = 500  # well above the fixture threshold → really chunks

    def _pair(self, rng, cols=7):
        a = rng.normal(size=(self.ROWS, cols))
        b = rng.normal(size=(self.ROWS, cols))
        return a, b

    @pytest.mark.parametrize("op", [
        "add", "subtract", "multiply", "divide", "maximum", "greater",
    ])
    def test_binary_elementwise(self, par, rng, op):
        a, b = self._pair(rng)
        np.testing.assert_array_equal(
            getattr(par, op)(a, b), getattr(REFERENCE, op)(a, b)
        )

    @pytest.mark.parametrize("op", [
        "negative", "exp", "log1p", "sqrt", "absolute", "sign", "tanh",
    ])
    def test_unary_elementwise(self, par, rng, op):
        a = np.abs(rng.normal(size=(self.ROWS, 5))) + 0.1
        np.testing.assert_array_equal(
            getattr(par, op)(a), getattr(REFERENCE, op)(a)
        )

    def test_log_and_out_form(self, par, rng):
        a = np.abs(rng.normal(size=(self.ROWS, 5))) + 0.1
        np.testing.assert_array_equal(par.log(a), REFERENCE.log(a))
        out = np.empty_like(a)
        result = par.exp(a, out=out)
        assert result is out
        np.testing.assert_array_equal(out, REFERENCE.exp(a))

    def test_broadcast_operands_pass_whole(self, par, rng):
        a = rng.normal(size=(self.ROWS, 6))
        bias = rng.normal(size=(6,))       # broadcast row
        col = rng.normal(size=(self.ROWS, 1))  # full-rows column
        np.testing.assert_array_equal(
            par.add(a, bias), REFERENCE.add(a, bias)
        )
        np.testing.assert_array_equal(
            par.multiply(a, col), REFERENCE.multiply(a, col)
        )
        np.testing.assert_array_equal(
            par.add(a, 2.5), REFERENCE.add(a, 2.5)
        )

    def test_clip_and_where(self, par, rng):
        a = rng.normal(size=(self.ROWS, 4))
        np.testing.assert_array_equal(
            par.clip(a, -0.5, 0.5), REFERENCE.clip(a, -0.5, 0.5)
        )
        cond = a > 0
        b = rng.normal(size=(self.ROWS, 4))
        np.testing.assert_array_equal(
            par.where(cond, a, b), REFERENCE.where(cond, a, b)
        )
        np.testing.assert_array_equal(
            par.where(cond, a, 0.0), REFERENCE.where(cond, a, 0.0)
        )

    def test_row_reductions(self, par, rng):
        a = rng.normal(size=(self.ROWS, 33))
        np.testing.assert_array_equal(
            par.sum(a, axis=1), REFERENCE.sum(a, axis=1)
        )
        np.testing.assert_array_equal(
            par.sum(a, axis=1, keepdims=True),
            REFERENCE.sum(a, axis=1, keepdims=True),
        )
        np.testing.assert_array_equal(
            par.amax(a, axis=1), REFERENCE.amax(a, axis=1)
        )
        out = np.empty(self.ROWS)
        par.sum(a, axis=1, out=out)
        np.testing.assert_array_equal(out, REFERENCE.sum(a, axis=1))

    def test_leading_axis_reduction_stays_serial_and_exact(self, par, rng):
        a = rng.normal(size=(self.ROWS, 5))
        np.testing.assert_array_equal(
            par.sum(a, axis=0), REFERENCE.sum(a, axis=0)
        )
        assert par.sum(a) == REFERENCE.sum(a)

    def test_take(self, par, rng):
        table = rng.normal(size=(40, 6))
        index = rng.integers(0, 40, size=self.ROWS)
        np.testing.assert_array_equal(
            par.take(table, index), REFERENCE.take(table, index)
        )
        out = np.empty((self.ROWS, 6))
        par.take(table, index, out=out)
        np.testing.assert_array_equal(out, REFERENCE.take(table, index))
        # Negative indices flow through the no-out gather unchanged.
        negative = index - 40
        np.testing.assert_array_equal(
            par.take(table, negative), REFERENCE.take(table, negative)
        )
        with pytest.raises(IndexError):
            par.take(table, np.full(self.ROWS, 40, dtype=np.int64))

    def test_add_at_sorted_chunks(self, par, rng):
        index = np.sort(rng.integers(0, 37, size=self.ROWS))
        values = rng.normal(size=(self.ROWS, 3))
        ours = np.zeros((37, 3))
        theirs = np.zeros((37, 3))
        par.add_at(ours, index, values)
        REFERENCE.add_at(theirs, index, values)
        np.testing.assert_array_equal(ours, theirs)

    def test_add_at_scalar_values(self, par, rng):
        index = np.sort(rng.integers(0, 37, size=self.ROWS))
        ours, theirs = np.zeros(37), np.zeros(37)
        par.add_at(ours, index, 1.0)
        REFERENCE.add_at(theirs, index, 1.0)
        np.testing.assert_array_equal(ours, theirs)

    def test_add_at_unsorted_falls_back_exact(self, par, rng):
        index = rng.integers(0, 37, size=self.ROWS)  # unsorted → serial
        values = rng.normal(size=(self.ROWS, 3))
        ours, theirs = np.zeros((37, 3)), np.zeros((37, 3))
        par.add_at(ours, index, values)
        REFERENCE.add_at(theirs, index, values)
        np.testing.assert_array_equal(ours, theirs)

    def test_matmul_and_power_inherit_serial(self, par, rng):
        # GEMMs are never chunked (OpenBLAS kernels are m-sensitive);
        # the override set must leave them untouched.
        a = rng.normal(size=(self.ROWS, 16))
        w = rng.normal(size=(16, 8))
        np.testing.assert_array_equal(
            par.matmul(a, w), REFERENCE.matmul(a, w)
        )
        np.testing.assert_array_equal(
            par.power(a, 2.0), REFERENCE.power(a, 2.0)
        )

    def test_parity_under_many_grids(self, rng):
        a = rng.normal(size=(997, 13))  # prime row count: ragged slabs
        expected_sum = REFERENCE.sum(a, axis=1)
        expected_exp = REFERENCE.exp(a)
        for threads, min_rows in [(2, 16), (3, 64), (4, 100), (8, 997)]:
            backend = ParallelBackend(
                n_threads=threads, min_parallel_rows=min_rows
            )
            try:
                np.testing.assert_array_equal(
                    backend.sum(a, axis=1), expected_sum
                )
                np.testing.assert_array_equal(backend.exp(a), expected_exp)
            finally:
                backend.close()


# ----------------------------------------------------------------------
# Row-parallel fused flushes
# ----------------------------------------------------------------------
class TestFusedParity:
    def _plans(self, rng, dataset, n=420):
        users = rng.integers(0, dataset.n_users, size=n)
        items = rng.integers(0, dataset.n_items, size=n)
        participants = rng.integers(0, dataset.n_users, size=n)
        return (
            ScoringPlan.from_item_pairs(users, items),
            ScoringPlan.from_triples(users, items, participants),
        )

    def _fused_scores(self, model, plans, backend):
        with no_grad(), backend_scope(backend):
            model.executor = "fused"
            try:
                return [
                    np.array(model.score_item_plan(plans[0])),
                    np.array(model.score_participant_plan(plans[1])),
                ]
            finally:
                model.executor = "auto"

    def test_mgbr_thread_stress_bitwise(self, tiny_dataset, rng):
        """50 chunked MGBR flushes across grids, all bit-equal to numpy."""
        model = _mgbr(tiny_dataset)
        plans = self._plans(rng, tiny_dataset)
        reference = self._fused_scores(model, plans, REFERENCE)
        grids = [(2, 32), (4, 64), (8, 16), (3, 128), (4, 24)]
        for threads, min_rows in grids:
            backend = ParallelBackend(
                n_threads=threads, min_parallel_rows=min_rows
            )
            try:
                for _ in range(5):
                    got = self._fused_scores(model, plans, backend)
                    np.testing.assert_array_equal(got[0], reference[0])
                    np.testing.assert_array_equal(got[1], reference[1])
            finally:
                backend.close()
        assert model.executor_stats()["fallbacks"] == 0

    def test_gbmf_slab_flush_bitwise(self, tiny_dataset, rng):
        model = _gbmf(tiny_dataset)
        plans = self._plans(rng, tiny_dataset)
        reference = self._fused_scores(model, plans, REFERENCE)
        backend = ParallelBackend(n_threads=4, min_parallel_rows=32)
        try:
            got = self._fused_scores(model, plans, backend)
        finally:
            backend.close()
        np.testing.assert_array_equal(got[0], reference[0])
        np.testing.assert_array_equal(got[1], reference[1])

    def test_slab_scheduling_is_deterministic(self, tiny_dataset, rng):
        """Repeated flushes and different grids agree bit-for-bit."""
        model = _gbmf(tiny_dataset)
        plans = self._plans(rng, tiny_dataset)
        runs = []
        for threads, min_rows in [(4, 32), (4, 32), (2, 100), (8, 16)]:
            backend = ParallelBackend(
                n_threads=threads, min_parallel_rows=min_rows
            )
            try:
                runs.append(self._fused_scores(model, plans, backend))
            finally:
                backend.close()
        for other in runs[1:]:
            np.testing.assert_array_equal(runs[0][0], other[0])
            np.testing.assert_array_equal(runs[0][1], other[1])


# ----------------------------------------------------------------------
# Knob threading: serving engines and the eval protocol
# ----------------------------------------------------------------------
class TestServingBackend:
    def test_worker_inherits_scope_backend(self, tiny_dataset):
        """Satellite contract: ``backend="auto"`` crosses the spawn."""
        counting = CountingBackend()
        model = _mgbr(tiny_dataset)
        with backend_scope(counting):
            engine = ServingEngine(model, max_delay_ms=1.0).start()
        try:
            engine.score_items(3, [0, 1, 2, 5], timeout=5.0)
            stats = engine.stats()
        finally:
            engine.stop()
        assert stats["engine"]["backend"] == "counting"
        assert sum(counting.counts.values()) > 0

    def test_explicit_instance_and_parity(self, tiny_dataset, par):
        def serve(backend):
            with ServingEngine(
                _mgbr(tiny_dataset), max_delay_ms=1.0, backend=backend
            ) as engine:
                a = engine.score_items(3, [0, 1, 2, 5], timeout=5.0)
                b = engine.score_participants(3, 1, [4, 5, 6], timeout=5.0)
                name = engine.stats()["engine"]["backend"]
            return a, b, name

        numpy_a, numpy_b, numpy_name = serve("numpy")
        par_a, par_b, par_name = serve(par)
        assert numpy_name == "numpy" and par_name == "parallel"
        np.testing.assert_array_equal(par_a, numpy_a)
        np.testing.assert_array_equal(par_b, numpy_b)

    def test_invalid_backend_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            ServingEngine(_gbmf(tiny_dataset), backend="no-such-backend")

    def test_multi_worker_forwards_backend(self, tiny_dataset, par):
        replicas = [_gbmf(tiny_dataset, seed=3) for _ in range(2)]
        with MultiWorkerEngine(
            replicas, max_delay_ms=1.0, backend=par
        ) as engine:
            engine.score_items(0, [0, 1, 2], timeout=5.0)
            stats = engine.stats()
        assert all(
            snap["engine"]["backend"] == "parallel"
            for snap in stats["workers"]
        )


class TestEvalBackend:
    def test_metrics_backend_invariant(self, tiny_dataset, par):
        model = _mgbr(tiny_dataset)
        results = {}
        for key, backend in (("numpy", "numpy"), ("parallel", par)):
            protocol = EvalProtocol(
                dataset=tiny_dataset, n_negatives=5, cutoff=5,
                max_instances=40, backend=backend,
            )
            results[key] = protocol.run(model).flat()
        assert results["parallel"] == results["numpy"]

    def test_invalid_backend_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            EvalProtocol(dataset=tiny_dataset, backend="no-such-backend")
