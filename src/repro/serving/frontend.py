"""Request-batching serving front-end over the planned scoring path.

Serving traffic arrives as many small, overlapping requests — "score
these 100 candidate items for user *u*" — and the ROADMAP's serving
items need them coalesced before they hit the model.  The
:class:`RequestBatcher` here is the **synchronous** front-end; the
caller owns the flush clock:

1. ``submit_items`` / ``submit_participants`` enqueue a request and
   return a :class:`repro.serving.core.PendingScores` ticket
   immediately;
2. ``flush`` compiles *all* pending requests of a task into one
   :class:`repro.plan.ScoringPlan` — cross-request duplicate (u, i) /
   (u, i, p) pairs are scored once, and the factorized models compute
   per-entity work once per unique entity — runs a single planned model
   call under ``no_grad`` (optionally float32), and scatters the score
   vector back onto every ticket;
3. reading ``PendingScores.scores`` before a flush triggers one
   automatically, so the front-end is safe to use one request at a time
   (it just stops being fast).

The queue/plan/scatter mechanics live in :mod:`repro.serving.core`
(shared with the asynchronous :class:`repro.serving.engine
.ServingEngine`, whose worker thread owns the clock instead).  A flush
whose model call raises **fails its co-batched tickets with that
exception** — ``scores``/``wait`` re-raise it instead of a generic
"never resolved" error — and the other task's requests still flush.

The model's encoder cache (``refresh_cache``) is reused across flushes;
call :meth:`RequestBatcher.refresh` after swapping weights (e.g. via
:func:`repro.training.checkpoint.restore_model`, which can hand serving
float32 weights directly).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.serving.core import PendingScores, RequestQueue, ScoringCore

__all__ = ["PendingScores", "RequestBatcher"]


class RequestBatcher:
    """Coalesces scoring requests into planned matrix calls (synchronous).

    Parameters
    ----------
    model: any :class:`repro.baselines.base.GroupBuyingRecommender`
        (``score_item_plan`` / ``score_participant_plan`` providers).
    dtype: scoring precision; ``"float32"`` opts into the substrate's
        inference fast path (pair well with a float32 checkpoint).
    max_pending: flat request rows per task after which a submit
        triggers an automatic flush — bounds both latency and the size
        of a planned call.
    max_queue_rows: optional admission (depth) budget — total pending
        flat rows beyond which ``submit_*`` raises a typed
        :class:`repro.serving.errors.OverloadError` instead of
        enqueueing.  Meaningful when it is set *below* ``max_pending``:
        excess submits then fail fast instead of triggering ever more
        auto-flush work.  ``None`` (default) admits everything.

    Single-threaded by design: submits and flushes must come from one
    thread (use :class:`repro.serving.engine.ServingEngine` for
    thread-safe submission with a worker-owned clock).  The sync path
    shares the engine's typed error surface:
    ``PendingScores.wait(timeout=)`` raises
    :class:`repro.serving.errors.TicketTimeout` on an unresolved
    ticket, and admission rejections are
    :class:`repro.serving.errors.OverloadError`.
    """

    def __init__(self, model, dtype: str = "float64", max_pending: int = 65536,
                 max_queue_rows: Optional[int] = None) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._core = ScoringCore(model, dtype)
        self._queue = RequestQueue(max_rows=max_queue_rows)
        self.max_pending = max_pending

    @property
    def model(self):
        return self._core.model

    @property
    def dtype(self) -> str:
        return self._core.dtype

    @property
    def stats(self) -> dict:
        """Lifetime counters: requests, flushes, flat vs unique rows."""
        return self._core.stats

    @property
    def max_queue_rows(self) -> Optional[int]:
        """The admission depth budget (``None`` = admit everything)."""
        return self._queue.max_rows

    @property
    def rejected(self) -> int:
        """Submits the depth budget refused with ``OverloadError``."""
        return self._queue.rejected

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_items(self, user: int, candidate_items: Sequence[int]) -> PendingScores:
        """Queue a Task-A request: rank ``candidate_items`` for ``user``.

        Raises :class:`repro.serving.errors.OverloadError` when a
        ``max_queue_rows`` depth budget is set and exhausted.
        """
        candidates = self._core.check_item_request(user, candidate_items)
        self._queue.admit(candidates.size)
        ticket = PendingScores(self)
        self._queue.add_items(user, candidates, ticket)
        self._track_submit()
        return ticket

    def submit_participants(
        self, user: int, item: int, candidate_users: Sequence[int]
    ) -> PendingScores:
        """Queue a Task-B request: rank ``candidate_users`` for ``(user, item)``.

        Same admission contract as :meth:`submit_items`.
        """
        candidates = self._core.check_participant_request(user, item, candidate_users)
        self._queue.admit(candidates.size)
        ticket = PendingScores(self)
        self._queue.add_participants(user, item, candidates, ticket)
        self._track_submit()
        return ticket

    def _track_submit(self) -> None:
        self._core.stats["requests"] += 1
        if self._queue.max_task_rows >= self.max_pending:
            self.flush()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Score every pending request in one planned call per task."""
        items, participants, _ = self._queue.swap()
        self._core.execute(items, participants)

    def _wait_ticket(self, ticket: PendingScores, timeout: Optional[float]) -> None:
        """Ticket resolution hook: the caller owns the clock, so flush."""
        del ticket, timeout
        self.flush()

    # ------------------------------------------------------------------
    # Convenience / lifecycle
    # ------------------------------------------------------------------
    def score_items(self, user: int, candidate_items: Sequence[int]) -> np.ndarray:
        """Submit-and-flush shorthand for a single Task-A request."""
        return self.submit_items(user, candidate_items).scores

    def score_participants(
        self, user: int, item: int, candidate_users: Sequence[int]
    ) -> np.ndarray:
        """Submit-and-flush shorthand for a single Task-B request."""
        return self.submit_participants(user, item, candidate_users).scores

    def shard_stats(self) -> Dict[str, dict]:
        """Per-store gather/cache counters of the served model
        (see :meth:`repro.serving.core.ScoringCore.shard_stats`)."""
        return self._core.shard_stats()

    def refresh(self) -> None:
        """Re-run the encoder after a weight update (checkpoint swap)."""
        self._core.refresh()

    def release(self) -> None:
        """Flush remaining requests and drop the model's serving cache.

        Call before handing the model back to training or analysis code
        so no reduced-precision encoder pass leaks out of serving.
        """
        self.flush()
        self._core.release()
