"""Unit tests for optimizers: convergence, state handling, clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Parameter, clip_grad_norm, tensor
from repro.nn.optim import Optimizer


def _quadratic_steps(opt_cls, steps, **kwargs):
    p = Parameter(np.array([4.0, -2.0, 1.0]))
    opt = opt_cls([p], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        loss = (p * p).sum()
        loss.backward()
        opt.step()
    return p


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_steps(SGD, 200, lr=0.05)
        assert float((p.data**2).sum()) < 1e-6

    def test_momentum_converges(self):
        p = _quadratic_steps(SGD, 200, lr=0.02, momentum=0.9)
        assert float((p.data**2).sum()) < 1e-6

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        # Zero loss gradient; only decay acts.
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()  # no backward happened
        np.testing.assert_array_equal(p.data, [1.0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_steps(Adam, 300, lr=0.1)
        assert float((p.data**2).sum()) < 1e-5

    def test_beats_sgd_on_ill_conditioned(self):
        # Strongly anisotropic quadratic: Adam normalizes per-coordinate.
        def run(opt_cls, lr):
            p = Parameter(np.array([1.0, 1.0]))
            scale = tensor(np.array([100.0, 0.01]))
            opt = opt_cls([p], lr=lr)
            for _ in range(100):
                opt.zero_grad()
                (scale * p * p).sum().backward()
                opt.step()
            return float(np.abs(p.data).sum())

        assert run(Adam, 0.05) < run(SGD, 0.001)

    def test_default_lr_is_paper_rho(self):
        opt = Adam([Parameter(np.ones(1))])
        assert opt.lr == pytest.approx(2e-4)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.9))

    def test_step_counter_advances(self):
        p = Parameter(np.ones(2))
        opt = Adam([p], lr=0.01)
        for _ in range(3):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert opt._step == 3

    def test_weight_decay_applies(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1, weight_decay=10.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0


class TestOptimizerBase:
    def test_empty_param_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_base_step_abstract(self):
        with pytest.raises(NotImplementedError):
            Optimizer([Parameter(np.ones(1))]).step()

    def test_zero_grad(self):
        p = Parameter(np.ones(2))
        (p * p).sum().backward()
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_no_clip_when_under(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_invalid_max_norm(self):
        p = Parameter(np.ones(1))
        p.grad = np.ones(1)
        with pytest.raises(ValueError):
            clip_grad_norm([p], max_norm=0.0)

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad, b.grad = np.array([3.0]), np.array([4.0])
        pre = clip_grad_norm([a, b], max_norm=2.5)
        assert pre == pytest.approx(5.0)
        # Both scaled by 1/2.
        np.testing.assert_allclose(a.grad, [1.5])
        np.testing.assert_allclose(b.grad, [2.0])


class TestEndToEndFit:
    def test_linear_regression_recovers_weights(self, rng):
        true_w = np.array([[2.0], [-3.0]])
        x = rng.normal(size=(200, 2))
        y = x @ true_w
        layer = Linear(2, 1, seed=0)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            pred = layer(tensor(x))
            loss = ((pred - tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)
